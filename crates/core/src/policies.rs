//! Scheduling policies: the two baselines of §3.4, the exact optimum, and
//! the threshold heuristic from the research agenda (§4).
//!
//! [`Policy`] is the closed, `Copy` descriptor the sweep engine and bench
//! tables iterate over; every variant is *implemented* by a shipped
//! [`crate::controller::Controller`] ([`Policy::controller`]),
//! so this module is a thin naming layer over the open controller
//! abstraction.

use crate::assignment::SwitchSchedule;
use crate::controller::{AlwaysReconfigure, Controller, DpPlanned, Static, Threshold};
use crate::error::CoreError;
use crate::objective::{evaluate, CostReport, ReconfigAccounting};
use crate::problem::SwitchingProblem;

/// A circuit-switching policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// Never reconfigure: every step runs on the base topology `G`
    /// (the "static ring" baseline).
    StaticBase,
    /// Reconfigure before every step to match its pattern (the "BvN
    /// schedule" baseline: the collective's own matchings *are* its BvN
    /// decomposition, applied naively).
    AlwaysMatched,
    /// The exact DP optimum of eq. (7).
    Optimal,
    /// Per-step greedy rule: reconfigure iff the step's standalone gain
    /// `β·mᵢ·(1/θᵢ − 1) + δ·(ℓᵢ − 1)` exceeds the worst-case
    /// reconfiguration delay. Ignores schedule context (the cost of
    /// returning to base, consecutive-matched savings), hence suboptimal —
    /// by how much is quantified in the A1 ablation.
    Threshold,
}

impl Policy {
    /// All policies, in presentation order.
    pub const ALL: [Policy; 4] = [
        Policy::StaticBase,
        Policy::AlwaysMatched,
        Policy::Optimal,
        Policy::Threshold,
    ];

    /// The controller implementing this policy.
    pub fn controller(self) -> &'static dyn Controller {
        match self {
            Policy::StaticBase => &Static,
            Policy::AlwaysMatched => &AlwaysReconfigure,
            Policy::Optimal => &DpPlanned,
            Policy::Threshold => &Threshold,
        }
    }

    /// Stable name for tables (the backing controller's name).
    pub fn name(self) -> &'static str {
        match self {
            Policy::StaticBase => "static",
            Policy::AlwaysMatched => "bvn",
            Policy::Optimal => "opt",
            Policy::Threshold => "threshold",
        }
    }
}

/// Produces the switch schedule a policy chooses for `problem` — the plan
/// of [`Policy::controller`].
///
/// # Errors
///
/// Propagates solver errors.
pub fn schedule_for(
    problem: &SwitchingProblem,
    policy: Policy,
    accounting: ReconfigAccounting,
) -> Result<SwitchSchedule, CoreError> {
    policy.controller().plan(problem, accounting)
}

/// Prices the schedule a policy chooses.
///
/// # Errors
///
/// Propagates solver errors.
pub fn evaluate_policy(
    problem: &SwitchingProblem,
    policy: Policy,
    accounting: ReconfigAccounting,
) -> Result<CostReport, CoreError> {
    let schedule = schedule_for(problem, policy, accounting)?;
    evaluate(problem, &schedule, accounting)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aps_collectives::allreduce;
    use aps_cost::{CostParams, ReconfigModel};
    use aps_flow::solver::{ThetaCache, ThroughputSolver};
    use aps_topology::builders;

    fn problem(n: usize, m: f64, alpha_r: f64) -> SwitchingProblem {
        let topo = builders::ring_unidirectional(n).unwrap();
        let c = allreduce::swing::build(n, m).unwrap();
        let mut cache = ThetaCache::new(&topo, ThroughputSolver::ForcedPath);
        SwitchingProblem::build(
            &topo,
            &c.schedule,
            &mut cache,
            CostParams::paper_defaults(),
            ReconfigModel::constant(alpha_r).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn optimal_dominates_all_policies() {
        for m in [1e3, 1e6, 1e8] {
            for alpha_r in [1e-8, 1e-6, 1e-3] {
                let p = problem(16, m, alpha_r);
                let opt = evaluate_policy(&p, Policy::Optimal, Default::default()).unwrap();
                for pol in Policy::ALL {
                    let r = evaluate_policy(&p, pol, Default::default()).unwrap();
                    assert!(
                        opt.total_s() <= r.total_s() + 1e-15,
                        "m={m} αr={alpha_r}: opt {} beaten by {} ({})",
                        opt.total_s(),
                        pol.name(),
                        r.total_s()
                    );
                }
            }
        }
    }

    #[test]
    fn threshold_agrees_with_optimal_in_extreme_regimes() {
        // Tiny messages + huge delay: both stay static.
        let p = problem(16, 100.0, 1e-3);
        let th = schedule_for(&p, Policy::Threshold, Default::default()).unwrap();
        let opt = schedule_for(&p, Policy::Optimal, Default::default()).unwrap();
        assert_eq!(th, SwitchSchedule::all_base(p.num_steps()));
        assert_eq!(opt, th);
        // Huge messages + free-ish delay: both fully reconfigure.
        let p = problem(16, 1e9, 1e-9);
        let th = schedule_for(&p, Policy::Threshold, Default::default()).unwrap();
        let opt = schedule_for(&p, Policy::Optimal, Default::default()).unwrap();
        assert_eq!(th, SwitchSchedule::all_matched(p.num_steps()));
        assert_eq!(opt, th);
    }

    #[test]
    fn policy_names_match_their_controllers() {
        assert_eq!(
            Policy::ALL.map(|p| p.name()),
            ["static", "bvn", "opt", "threshold"]
        );
        for p in Policy::ALL {
            assert_eq!(p.name(), p.controller().name());
        }
    }
}
