//! Switching optimization for multi-ported collectives (§4 extension).
//!
//! With `k` transceivers per GPU (each of bandwidth `b/k`, preserving the
//! per-GPU budget), a step is a union of up to `k` matchings. The choice
//! per step stays binary:
//!
//! * **base** — run the union demand on the multi-plane base topology (e.g.
//!   a union of co-prime rings); congestion is `1/θ(G, Σ_p M_p)` from the
//!   weighted-demand solvers in `aps-flow`;
//! * **matched** — give every (port, pair) its own circuit on its plane:
//!   `k` planes of capacity `1/k`, so the congestion factor collapses to
//!   `k` (each circuit runs at `b/k`) and paths to one hop.
//!
//! The trellis DP is unchanged — only the per-step run costs differ.

use crate::error::CoreError;
use crate::objective::ReconfigAccounting;
use aps_collectives::multiport::MultiPortSchedule;
use aps_cost::CostParams;
use aps_cost::ReconfigModel;
use aps_flow::demand::{forced_path_demand_throughput, gk_demand_throughput};
use aps_flow::solver::ThroughputSolver;
use aps_matrix::DemandMatrix;
use aps_topology::Topology;

/// Per-step figures for a multi-port problem.
#[derive(Debug, Clone)]
pub struct MultiPortStepCosts {
    /// The union demand `Σ_p M_p` (multiplicities).
    pub union: DemandMatrix,
    /// Bytes per (port, pair).
    pub bytes: f64,
    /// `θ(G, union)` on the base.
    pub theta_base: f64,
    /// Hop count on the base.
    pub ell_base: usize,
}

/// A multi-port instance of the eq. (7) program.
#[derive(Debug, Clone)]
pub struct MultiPortProblem {
    /// Node count.
    pub n: usize,
    /// Port planes `k`.
    pub ports: usize,
    /// α, β, δ (β is the inverse of the *total* per-GPU bandwidth `b`).
    pub params: CostParams,
    /// Reconfiguration pricing.
    pub reconfig: ReconfigModel,
    /// Per-step costs.
    pub steps: Vec<MultiPortStepCosts>,
}

/// Builds the problem by evaluating every step's union demand on `base`.
///
/// # Errors
///
/// Fails on unroutable steps or FPTAS parameter errors.
pub fn build_multiport(
    base: &Topology,
    schedule: &MultiPortSchedule,
    solver: ThroughputSolver,
    params: CostParams,
    reconfig: ReconfigModel,
) -> Result<MultiPortProblem, CoreError> {
    let mut steps = Vec::with_capacity(schedule.num_steps());
    for s in schedule.steps() {
        let union = s
            .union_demand(schedule.n())
            .map_err(aps_collectives::CollectiveError::Matrix)?;
        let (theta_base, ell_base) = match solver {
            ThroughputSolver::ForcedPath => forced_path_demand_throughput(base, &union)?,
            ThroughputSolver::GargKonemann { epsilon } => {
                let r = gk_demand_throughput(base, &union, epsilon)?;
                (
                    r.lower_bound.min(r.upper_bound),
                    if union.support_size() == 0 {
                        0
                    } else {
                        r.max_hops
                    },
                )
            }
            ThroughputSolver::DegreeProxy => {
                aps_flow::demand::degree_proxy_demand_throughput(base, &union)?
            }
        };
        steps.push(MultiPortStepCosts {
            union,
            bytes: s.bytes_per_pair,
            theta_base,
            ell_base,
        });
    }
    Ok(MultiPortProblem {
        n: schedule.n(),
        ports: schedule.ports(),
        params,
        reconfig,
        steps,
    })
}

impl MultiPortProblem {
    /// Number of steps.
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    fn run_cost(&self, i: usize, matched: bool) -> f64 {
        let s = &self.steps[i];
        let p = &self.params;
        if s.union.support_size() == 0 {
            return p.alpha_s;
        }
        if matched {
            // k planes of capacity 1/k: each circuit carries `bytes` at b/k.
            p.alpha_s + p.delta_s + p.beta_s_per_byte * s.bytes * self.ports as f64
        } else {
            p.alpha_s + p.delta_s * s.ell_base as f64 + p.beta_s_per_byte * s.bytes / s.theta_base
        }
    }

    fn reconfig_charge(&self, prev_base: bool, cur_base: bool) -> f64 {
        if prev_base && cur_base {
            0.0
        } else {
            // Multi-plane reconfigurations retarget up to all n·k circuits;
            // the paper's conservative model charges the full α_r.
            self.reconfig.worst_case_delay_s(self.n * self.ports)
        }
    }

    /// Prices a schedule given as "matched?" flags.
    ///
    /// # Errors
    ///
    /// Fails on length mismatch.
    pub fn evaluate(&self, matched: &[bool]) -> Result<f64, CoreError> {
        if matched.len() != self.num_steps() {
            return Err(CoreError::ScheduleLengthMismatch {
                expected: self.num_steps(),
                got: matched.len(),
            });
        }
        let mut prev_base = true;
        let mut total = 0.0;
        for (i, &m) in matched.iter().enumerate() {
            total += self.run_cost(i, m) + self.reconfig_charge(prev_base, !m);
            prev_base = !m;
        }
        Ok(total)
    }

    /// Exact DP optimum; returns the matched-flags vector and its cost.
    pub fn optimize(&self, _accounting: ReconfigAccounting) -> (Vec<bool>, f64) {
        let s = self.num_steps();
        if s == 0 {
            return (vec![], 0.0);
        }
        // State 0 = base, 1 = matched.
        let mut best = vec![[f64::INFINITY; 2]; s];
        let mut parent = vec![[0usize; 2]; s];
        for (cur, cell) in best[0].iter_mut().enumerate() {
            *cell = self.run_cost(0, cur == 1) + self.reconfig_charge(true, cur == 0);
        }
        for i in 1..s {
            for cur in 0..2 {
                let run = self.run_cost(i, cur == 1);
                for prev in 0..2 {
                    let cand = best[i - 1][prev] + run + self.reconfig_charge(prev == 0, cur == 0);
                    if cand < best[i][cur] {
                        best[i][cur] = cand;
                        parent[i][cur] = prev;
                    }
                }
            }
        }
        let mut state = if best[s - 1][0] <= best[s - 1][1] {
            0
        } else {
            1
        };
        let total = best[s - 1][state];
        let mut flags = vec![false; s];
        for i in (0..s).rev() {
            flags[i] = state == 1;
            state = parent[i][state];
        }
        (flags, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aps_collectives::multiport::mirrored_ring_allreduce;
    use aps_cost::units::MIB;

    fn problem(n: usize, m: f64, alpha_r: f64) -> MultiPortProblem {
        // 2-port base: forward + backward ring planes, capacity 1/2 each.
        let mut base = Topology::new(n, "dual-ring");
        for i in 0..n {
            base.add_link(i, (i + 1) % n, 0.5).unwrap();
            base.add_link(i, (i + n - 1) % n, 0.5).unwrap();
        }
        let mp = mirrored_ring_allreduce(n, m).unwrap();
        build_multiport(
            &base,
            &mp,
            ThroughputSolver::ForcedPath,
            CostParams::paper_defaults(),
            ReconfigModel::constant(alpha_r).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn mirrored_ring_is_congestion_free_on_dual_ring_base() {
        let p = problem(8, MIB, 1e-6);
        for s in &p.steps {
            // shift(1) on the forward plane + shift(-1) on the backward
            // plane: each link carries exactly its plane's pattern.
            assert!((s.theta_base - 0.5).abs() < 1e-12);
            assert_eq!(s.ell_base, 1);
        }
        // Matched and base therefore cost the same transmission (θ = 1/k
        // both ways) and OPT never reconfigures.
        let (flags, _) = p.optimize(ReconfigAccounting::PaperConservative);
        assert!(flags.iter().all(|&f| !f));
    }

    #[test]
    fn optimum_beats_or_ties_pure_policies() {
        for (m, alpha_r) in [(1e4, 1e-6), (1e8, 1e-7), (1e6, 1e-3)] {
            let p = problem(8, m, alpha_r);
            let s = p.num_steps();
            let (_, opt) = p.optimize(ReconfigAccounting::PaperConservative);
            let all_base = p.evaluate(&vec![false; s]).unwrap();
            let all_matched = p.evaluate(&vec![true; s]).unwrap();
            assert!(opt <= all_base + 1e-15);
            assert!(opt <= all_matched + 1e-15);
        }
    }

    #[test]
    fn skewed_union_prefers_reconfiguration() {
        // A union that fights the dual-ring base: both planes request the
        // same far shift, doubling the multiplicity on long paths.
        let n = 16;
        let mut base = Topology::new(n, "dual-ring");
        for i in 0..n {
            base.add_link(i, (i + 1) % n, 0.5).unwrap();
            base.add_link(i, (i + n - 1) % n, 0.5).unwrap();
        }
        let shift7 = aps_matrix::Matching::shift(n, 7).unwrap();
        let sched = aps_collectives::Schedule::new(
            n,
            aps_collectives::CollectiveKind::Composite,
            "far-shift",
            vec![aps_collectives::Step {
                matching: shift7,
                bytes_per_pair: 64.0 * MIB,
            }],
        )
        .unwrap();
        let mp = aps_collectives::multiport::MultiPortSchedule::mirrored(&[sched.clone(), sched])
            .unwrap();
        let p = build_multiport(
            &base,
            &mp,
            ThroughputSolver::ForcedPath,
            CostParams::paper_defaults(),
            ReconfigModel::constant(1e-5).unwrap(),
        )
        .unwrap();
        let (flags, opt) = p.optimize(ReconfigAccounting::PaperConservative);
        assert_eq!(flags, vec![true]);
        assert!(opt < p.evaluate(&[false]).unwrap());
    }

    #[test]
    fn evaluate_validates_length() {
        let p = problem(8, 1e6, 1e-6);
        assert!(p.evaluate(&[true]).is_err());
    }

    #[test]
    fn empty_schedule() {
        let mut p = problem(8, 1e6, 1e-6);
        p.steps.clear();
        let (flags, total) = p.optimize(ReconfigAccounting::PaperConservative);
        assert!(flags.is_empty());
        assert_eq!(total, 0.0);
    }
}
