//! Circuit-switch schedules: the decision vector `x` of eq. (7).

/// Per-step interconnect choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConfigChoice {
    /// `xᵢ = 1`: run the step on the base topology `G`.
    Base,
    /// `xᵢ = 0`: reconfigure the fabric to match the step's pattern `Mᵢ`.
    Matched,
}

impl ConfigChoice {
    /// The canonical single-byte encoding used by on-disk replay records
    /// (`aps-replay`): `0` = base, `1` = matched. Stable across releases —
    /// changing it is a replay-format schema bump.
    pub const fn to_byte(self) -> u8 {
        match self {
            Self::Base => 0,
            Self::Matched => 1,
        }
    }

    /// Decodes [`ConfigChoice::to_byte`]; `None` for any other byte.
    pub const fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(Self::Base),
            1 => Some(Self::Matched),
            _ => None,
        }
    }
}

/// A complete circuit-switching schedule for an `s`-step collective.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchSchedule {
    choices: Vec<ConfigChoice>,
}

impl SwitchSchedule {
    /// Wraps an explicit choice vector.
    pub fn new(choices: Vec<ConfigChoice>) -> Self {
        Self { choices }
    }

    /// The static policy: never reconfigure.
    pub fn all_base(s: usize) -> Self {
        Self {
            choices: vec![ConfigChoice::Base; s],
        }
    }

    /// The per-step BvN policy: reconfigure to match every step.
    pub fn all_matched(s: usize) -> Self {
        Self {
            choices: vec![ConfigChoice::Matched; s],
        }
    }

    /// The choice for step `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn choice(&self, i: usize) -> ConfigChoice {
        self.choices[i]
    }

    /// All choices in step order.
    pub fn choices(&self) -> &[ConfigChoice] {
        &self.choices
    }

    /// Number of steps covered.
    pub fn len(&self) -> usize {
        self.choices.len()
    }

    /// `true` for a zero-step schedule.
    pub fn is_empty(&self) -> bool {
        self.choices.is_empty()
    }

    /// Number of steps run on the matched topology.
    pub fn matched_steps(&self) -> usize {
        self.choices
            .iter()
            .filter(|c| **c == ConfigChoice::Matched)
            .count()
    }

    /// Number of reconfiguration events under the paper's `z` semantics
    /// (`x₀ = 1`): step `i` triggers one unless both it and its predecessor
    /// run on the base.
    pub fn reconfig_events(&self) -> usize {
        let mut prev = ConfigChoice::Base;
        let mut events = 0;
        for &c in &self.choices {
            if !(prev == ConfigChoice::Base && c == ConfigChoice::Base) {
                events += 1;
            }
            prev = c;
        }
        events
    }

    /// Compact string form, e.g. `"GMMG"` (G = base, M = matched).
    pub fn compact(&self) -> String {
        self.choices
            .iter()
            .map(|c| match c {
                ConfigChoice::Base => 'G',
                ConfigChoice::Matched => 'M',
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn choice_byte_codec_roundtrips() {
        for c in [ConfigChoice::Base, ConfigChoice::Matched] {
            assert_eq!(ConfigChoice::from_byte(c.to_byte()), Some(c));
        }
        assert_eq!(ConfigChoice::Base.to_byte(), 0);
        assert_eq!(ConfigChoice::Matched.to_byte(), 1);
        assert_eq!(ConfigChoice::from_byte(2), None);
    }

    #[test]
    fn constructors() {
        assert_eq!(SwitchSchedule::all_base(3).compact(), "GGG");
        assert_eq!(SwitchSchedule::all_matched(2).compact(), "MM");
        assert!(SwitchSchedule::new(vec![]).is_empty());
    }

    #[test]
    fn reconfig_event_counting() {
        // Paper semantics: consecutive matched steps each pay; returning to
        // base pays too.
        use ConfigChoice::*;
        assert_eq!(SwitchSchedule::all_base(5).reconfig_events(), 0);
        assert_eq!(SwitchSchedule::all_matched(5).reconfig_events(), 5);
        assert_eq!(
            SwitchSchedule::new(vec![Base, Matched, Base, Base]).reconfig_events(),
            2
        );
        assert_eq!(
            SwitchSchedule::new(vec![Matched, Matched, Base, Base]).reconfig_events(),
            3
        );
    }

    #[test]
    fn counting_and_access() {
        use ConfigChoice::*;
        let s = SwitchSchedule::new(vec![Base, Matched, Matched]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.matched_steps(), 2);
        assert_eq!(s.choice(1), Matched);
        assert_eq!(s.choices()[0], Base);
    }
}
