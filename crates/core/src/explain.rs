//! Human-readable explanations of switching decisions.
//!
//! The DP returns *what* to do; this module reconstructs *why*: for every
//! step it tabulates the base-topology cost (congestion + propagation), the
//! matched-topology cost, the reconfiguration charges the chosen schedule
//! pays, and labels the decisive factor. Used by the examples and handy when
//! debugging schedules that look surprising.

use crate::assignment::{ConfigChoice, SwitchSchedule};
use crate::error::CoreError;
use crate::objective::{reconfig_charge, step_run_cost, ReconfigAccounting};
use crate::problem::SwitchingProblem;
use aps_cost::units::{format_bytes, format_time};
use std::fmt;

/// Why a step's choice wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reason {
    /// Base chosen: the matched gain does not cover the reconfiguration.
    GainBelowReconfigCost,
    /// Base chosen: the step suffers no congestion on the base anyway.
    BaseAlreadyUncongested,
    /// Matched chosen: bandwidth (congestion) savings dominate.
    CongestionSavings,
    /// Matched chosen: propagation (path-length) savings dominate.
    PropagationSavings,
    /// Matched chosen as part of a run of matched steps (the marginal
    /// reconfiguration was already paid by a neighbor).
    RidesNeighborReconfig,
}

impl Reason {
    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            Reason::GainBelowReconfigCost => "gain < α_r",
            Reason::BaseAlreadyUncongested => "base uncongested",
            Reason::CongestionSavings => "congestion savings",
            Reason::PropagationSavings => "propagation savings",
            Reason::RidesNeighborReconfig => "rides neighbor reconfig",
        }
    }
}

/// One row of the explanation table.
#[derive(Debug, Clone)]
pub struct StepExplanation {
    /// Step index.
    pub step: usize,
    /// The schedule's choice.
    pub choice: ConfigChoice,
    /// Bytes per pair.
    pub bytes: f64,
    /// `θ(G, Mᵢ)` on the base.
    pub theta_base: f64,
    /// Hops on the base.
    pub ell_base: usize,
    /// Run cost on the base (no reconfiguration), seconds.
    pub base_cost_s: f64,
    /// Run cost matched (no reconfiguration), seconds.
    pub matched_cost_s: f64,
    /// Reconfiguration charge actually paid entering this step, seconds.
    pub reconfig_paid_s: f64,
    /// The decisive factor.
    pub reason: Reason,
}

/// The full explanation of a schedule on a problem.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// Per-step rows.
    pub steps: Vec<StepExplanation>,
}

/// Builds the explanation table for `schedule` on `problem`.
///
/// # Errors
///
/// Fails on schedule/problem length mismatch.
pub fn explain(
    problem: &SwitchingProblem,
    schedule: &SwitchSchedule,
    accounting: ReconfigAccounting,
) -> Result<Explanation, CoreError> {
    if schedule.len() != problem.num_steps() {
        return Err(CoreError::ScheduleLengthMismatch {
            expected: problem.num_steps(),
            got: schedule.len(),
        });
    }
    let mut steps = Vec::with_capacity(problem.num_steps());
    let mut prev = ConfigChoice::Base;
    for (i, s) in problem.steps.iter().enumerate() {
        let choice = schedule.choice(i);
        let base_cost_s = step_run_cost(problem, i, ConfigChoice::Base);
        let matched_cost_s = step_run_cost(problem, i, ConfigChoice::Matched);
        let reconfig_paid_s = reconfig_charge(problem, accounting, prev, choice, i);
        let p = &problem.params;
        let congestion_gain = p.beta_s_per_byte * s.bytes * (1.0 / s.theta_base - 1.0);
        let propagation_gain = p.delta_s * (s.ell_base as f64 - 1.0).max(0.0);
        let reason = match choice {
            ConfigChoice::Base => {
                if s.theta_base >= 1.0 - 1e-12 && s.ell_base <= 1 {
                    Reason::BaseAlreadyUncongested
                } else {
                    Reason::GainBelowReconfigCost
                }
            }
            ConfigChoice::Matched => {
                if reconfig_paid_s == 0.0
                    || (prev == ConfigChoice::Matched
                        && congestion_gain + propagation_gain < reconfig_paid_s)
                {
                    Reason::RidesNeighborReconfig
                } else if congestion_gain >= propagation_gain {
                    Reason::CongestionSavings
                } else {
                    Reason::PropagationSavings
                }
            }
        };
        steps.push(StepExplanation {
            step: i,
            choice,
            bytes: s.bytes,
            theta_base: s.theta_base,
            ell_base: s.ell_base,
            base_cost_s,
            matched_cost_s,
            reconfig_paid_s,
            reason,
        });
        prev = choice;
    }
    Ok(Explanation { steps })
}

impl fmt::Display for Explanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:>4} {:>7} {:>9} {:>7} {:>4} {:>12} {:>12} {:>10}  reason",
            "step", "choice", "bytes", "θ", "ℓ", "t(base)", "t(matched)", "α_r paid"
        )?;
        for s in &self.steps {
            writeln!(
                f,
                "{:>4} {:>7} {:>9} {:>7.3} {:>4} {:>12} {:>12} {:>10}  {}",
                s.step,
                match s.choice {
                    ConfigChoice::Base => "base",
                    ConfigChoice::Matched => "matched",
                },
                format_bytes(s.bytes),
                s.theta_base,
                s.ell_base,
                format_time(s.base_cost_s),
                format_time(s.matched_cost_s),
                format_time(s.reconfig_paid_s),
                s.reason.label(),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp;
    use aps_collectives::alltoall;
    use aps_cost::{CostParams, ReconfigModel};
    use aps_flow::solver::{ThetaCache, ThroughputSolver};
    use aps_topology::builders;

    fn problem(alpha_r: f64) -> SwitchingProblem {
        let n = 16;
        let topo = builders::ring_unidirectional(n).unwrap();
        let c = alltoall::linear_shift(n, 8e6).unwrap();
        let mut cache = ThetaCache::new(&topo, ThroughputSolver::ForcedPath);
        SwitchingProblem::build(
            &topo,
            &c.schedule,
            &mut cache,
            CostParams::paper_defaults(),
            ReconfigModel::constant(alpha_r).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn explains_the_optimal_schedule() {
        let p = problem(20e-6);
        let acc = ReconfigAccounting::PaperConservative;
        let (schedule, _) = dp::optimize(&p, acc).unwrap();
        let ex = explain(&p, &schedule, acc).unwrap();
        assert_eq!(ex.steps.len(), p.num_steps());
        // Near shifts stay on the base (uncongested or gain < α_r), far
        // shifts reconfigure for congestion.
        assert_eq!(ex.steps[0].choice, ConfigChoice::Base);
        assert_eq!(ex.steps[0].reason, Reason::BaseAlreadyUncongested);
        let far = ex.steps.iter().find(|s| s.choice == ConfigChoice::Matched);
        if let Some(far) = far {
            assert!(matches!(
                far.reason,
                Reason::CongestionSavings | Reason::PropagationSavings
            ));
        }
        // Rendering mentions every step and is non-empty.
        let text = ex.to_string();
        assert!(text.contains("reason"));
        assert!(text.lines().count() >= p.num_steps());
    }

    #[test]
    fn consecutive_matched_steps_ride_the_run() {
        let p = problem(1e-7); // cheap α_r: everything reconfigures
        let acc = ReconfigAccounting::PaperConservative;
        let (schedule, _) = dp::optimize(&p, acc).unwrap();
        let ex = explain(&p, &schedule, acc).unwrap();
        // With a cheap delay, far shifts still pay their own (tiny) α_r and
        // explain as savings; the table's reconfig column matches the
        // objective's total.
        let total_reconfig: f64 = ex.steps.iter().map(|s| s.reconfig_paid_s).sum();
        let report = crate::evaluate(&p, &schedule, acc).unwrap();
        assert!((total_reconfig - report.reconfig_s).abs() < 1e-15);
    }

    #[test]
    fn length_mismatch_rejected() {
        let p = problem(1e-6);
        assert!(explain(&p, &SwitchSchedule::all_base(2), Default::default()).is_err());
    }
}
