//! # aps-core — circuit-switching schedule optimization (§3.3 of the paper)
//!
//! The paper's central contribution: given a collective
//! `⟨(M₁, m₁), …, (M_s, m_s)⟩` running on a scale-up domain whose photonic
//! fabric can either stay on a base topology `G` or reconfigure to match
//! each step's pattern, choose per step
//!
//! ```text
//! xᵢ = 1  → run step i on the base topology G   (congestion 1/θᵢ, hops ℓᵢ)
//! xᵢ = 0  → reconfigure to the matched topology Mᵢ (θ = 1, ℓ = 1, pay α_r)
//! ```
//!
//! minimizing eq. (7):
//!
//! ```text
//! min  δ·Σ (xᵢ·ℓᵢ + (1−xᵢ))  +  Σ (1−zᵢ)·α_r  +  s·α
//!      + β·Σ mᵢ·(xᵢ/θᵢ + (1−xᵢ))
//! s.t. zᵢ = xᵢ ∧ xᵢ₋₁,  x₀ = 1
//! ```
//!
//! The 0–1 program couples only adjacent steps, so the exact optimum falls
//! out of an `O(s)` dynamic program ([`dp::optimize`]) — the "efficient
//! dynamic programming solution" the paper invokes via the principle of
//! optimality. An exhaustive solver ([`brute::optimize_exhaustive`]) and a
//! proptest suite pin the DP to the ILP objective.
//!
//! On top of the solver this crate provides the evaluation machinery of
//! §3.4 behind one open abstraction: the [`controller::Controller`] trait.
//! A controller observes each step's demand and the fabric's state and
//! decides whether the fabric bends ([`ConfigChoice::Matched`], pay `α_r`)
//! or stays put ([`ConfigChoice::Base`]). The baselines (static base,
//! per-step BvN), the threshold heuristic, an online greedy rule and the
//! DP optimum all ship as controllers; [`ScaleupDomain::plan_with`],
//! [`sweep::plan_jobs_on`] and the simulator's adaptive executor accept
//! any `&dyn Controller`. Multi-base-topology pools and the
//! `α_r × message-size` sweep that regenerates the paper's heatmaps
//! complete the picture.

pub mod analysis;
pub mod assignment;
pub mod brute;
pub mod controller;
pub mod domain;
pub mod dp;
pub mod error;
pub mod explain;
pub mod multibase;
pub mod multiport;
pub mod objective;
pub mod policies;
pub mod problem;
pub mod sweep;

pub use assignment::{ConfigChoice, SwitchSchedule};
pub use controller::{Controller, StepObservation};
pub use domain::{PolicyComparison, ScaleupDomain};
pub use error::CoreError;
pub use objective::{evaluate, CostReport, ReconfigAccounting};
pub use problem::SwitchingProblem;
