//! Exact `O(s)` dynamic-programming solver for eq. (7).
//!
//! The objective decomposes into per-step terms that depend only on the
//! adjacent pair `(xᵢ₋₁, xᵢ)`: the run cost of step `i` under `xᵢ` plus the
//! reconfiguration charge, which is a function of the two adjacent
//! configurations. The optimum is therefore a shortest path through a
//! `2 × s` trellis with `x₀ = 1` (base) as the source — the "efficient
//! dynamic programming solution … polynomial-time solvable due to the
//! principle of optimality" of §3.3. [`crate::brute`] and proptest pin this
//! solver to exhaustive enumeration.

use crate::assignment::{ConfigChoice, SwitchSchedule};
use crate::error::CoreError;
use crate::objective::{evaluate, reconfig_charge, step_run_cost, CostReport, ReconfigAccounting};
use crate::problem::SwitchingProblem;

const STATES: [ConfigChoice; 2] = [ConfigChoice::Base, ConfigChoice::Matched];

/// Computes an optimal switch schedule and its cost report.
///
/// ```
/// use aps_core::{dp, SwitchingProblem, ReconfigAccounting};
/// use aps_collectives::allreduce;
/// use aps_cost::{CostParams, ReconfigModel};
/// use aps_flow::solver::{ThetaCache, ThroughputSolver};
/// use aps_topology::builders;
///
/// let base = builders::ring_unidirectional(8).unwrap();
/// let coll = allreduce::halving_doubling::build(8, 1e6).unwrap();
/// let mut cache = ThetaCache::new(&base, ThroughputSolver::ForcedPath);
/// let problem = SwitchingProblem::build(
///     &base,
///     &coll.schedule,
///     &mut cache,
///     CostParams::paper_defaults(),
///     ReconfigModel::constant(1e-6).unwrap(),
/// )
/// .unwrap();
/// let (schedule, report) = dp::optimize(&problem, ReconfigAccounting::default()).unwrap();
/// assert_eq!(schedule.len(), 6);
/// assert!(report.total_s() > 0.0);
/// ```
///
/// # Errors
///
/// Propagates evaluation errors (none occur for well-formed problems).
pub fn optimize(
    problem: &SwitchingProblem,
    accounting: ReconfigAccounting,
) -> Result<(SwitchSchedule, CostReport), CoreError> {
    let s = problem.num_steps();
    if s == 0 {
        let schedule = SwitchSchedule::new(vec![]);
        let report = evaluate(problem, &schedule, accounting)?;
        return Ok((schedule, report));
    }
    // best[i][state]: minimal cost of steps 0..=i ending in `state`.
    let mut best = vec![[f64::INFINITY; 2]; s];
    let mut parent = vec![[0usize; 2]; s];

    for (cur_idx, &cur) in STATES.iter().enumerate() {
        best[0][cur_idx] = step_run_cost(problem, 0, cur)
            + reconfig_charge(problem, accounting, ConfigChoice::Base, cur, 0);
    }
    for i in 1..s {
        for (cur_idx, &cur) in STATES.iter().enumerate() {
            let run = step_run_cost(problem, i, cur);
            for (prev_idx, &prev) in STATES.iter().enumerate() {
                let cand = best[i - 1][prev_idx]
                    + run
                    + reconfig_charge(problem, accounting, prev, cur, i);
                if cand < best[i][cur_idx] {
                    best[i][cur_idx] = cand;
                    parent[i][cur_idx] = prev_idx;
                }
            }
        }
    }

    // Reconstruct.
    let mut state = if best[s - 1][0] <= best[s - 1][1] {
        0
    } else {
        1
    };
    let mut choices = vec![ConfigChoice::Base; s];
    for i in (0..s).rev() {
        choices[i] = STATES[state];
        state = parent[i][state];
    }
    let schedule = SwitchSchedule::new(choices);
    let report = evaluate(problem, &schedule, accounting)?;
    debug_assert!(
        (report.total_s() - best[s - 1][0].min(best[s - 1][1])).abs()
            <= 1e-12 * (1.0 + report.total_s()),
        "DP value disagrees with objective evaluation"
    );
    Ok((schedule, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::optimize_exhaustive;
    use aps_collectives::{allreduce, alltoall};
    use aps_cost::{CostParams, ReconfigModel};
    use aps_flow::solver::{ThetaCache, ThroughputSolver};
    use aps_topology::builders;

    fn problem_for(
        n: usize,
        m: f64,
        alpha_r: f64,
        build: impl Fn(usize, f64) -> aps_collectives::Collective,
    ) -> SwitchingProblem {
        let topo = builders::ring_unidirectional(n).unwrap();
        let c = build(n, m);
        let mut cache = ThetaCache::new(&topo, ThroughputSolver::ForcedPath);
        SwitchingProblem::build(
            &topo,
            &c.schedule,
            &mut cache,
            CostParams::paper_defaults(),
            ReconfigModel::constant(alpha_r).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn dp_matches_exhaustive_across_regimes() {
        for (m, alpha_r) in [
            (1e3, 1e-9),
            (1e3, 1e-4),
            (1e6, 1e-9),
            (1e6, 1e-6),
            (1e8, 1e-4),
            (64.0, 1e-7),
        ] {
            for accounting in [
                ReconfigAccounting::PaperConservative,
                ReconfigAccounting::PhysicalDiff,
            ] {
                let p = problem_for(8, m, alpha_r, |n, m| {
                    allreduce::halving_doubling::build(n, m).unwrap()
                });
                let (dps, dpr) = optimize(&p, accounting).unwrap();
                let (_, bfr) = optimize_exhaustive(&p, accounting).unwrap();
                assert!(
                    (dpr.total_s() - bfr.total_s()).abs() <= 1e-15 + 1e-9 * bfr.total_s(),
                    "m={m} αr={alpha_r} {accounting:?}: dp={} brute={} ({})",
                    dpr.total_s(),
                    bfr.total_s(),
                    dps.compact(),
                );
            }
        }
    }

    #[test]
    fn huge_reconfig_delay_forces_static() {
        let p = problem_for(8, 1e6, 1.0, |n, m| {
            allreduce::halving_doubling::build(n, m).unwrap()
        });
        let (s, r) = optimize(&p, Default::default()).unwrap();
        assert_eq!(s.compact(), "GGGGGG");
        assert_eq!(r.reconfig_s, 0.0);
    }

    #[test]
    fn free_reconfig_forces_all_matched() {
        let p = problem_for(8, 1e6, 0.0, |n, m| {
            allreduce::halving_doubling::build(n, m).unwrap()
        });
        let (s, _) = optimize(&p, Default::default()).unwrap();
        // With α_r = 0 the matched topology weakly dominates every step
        // whose base θ < 1; halving-doubling on a uni ring always has
        // θ < 1, so all steps reconfigure.
        assert_eq!(s.compact(), "MMMMMM");
    }

    #[test]
    fn optimal_beats_or_ties_both_baselines() {
        for m in [1e3, 1e5, 1e7] {
            for alpha_r in [1e-8, 1e-6, 1e-4] {
                let p = problem_for(16, m, alpha_r, |n, m| alltoall::linear_shift(n, m).unwrap());
                let (_, opt) = optimize(&p, Default::default()).unwrap();
                let st = evaluate(
                    &p,
                    &SwitchSchedule::all_base(p.num_steps()),
                    Default::default(),
                )
                .unwrap();
                let bvn = evaluate(
                    &p,
                    &SwitchSchedule::all_matched(p.num_steps()),
                    Default::default(),
                )
                .unwrap();
                let eps = 1e-12;
                assert!(opt.total_s() <= st.total_s() + eps);
                assert!(opt.total_s() <= bvn.total_s() + eps);
            }
        }
    }

    #[test]
    fn empty_problem() {
        let mut p = problem_for(8, 1e6, 1e-6, |n, m| {
            allreduce::halving_doubling::build(n, m).unwrap()
        });
        p.steps.clear();
        let (s, r) = optimize(&p, Default::default()).unwrap();
        assert!(s.is_empty());
        assert_eq!(r.total_s(), 0.0);
    }
}
