//! The native-Rust oracle for `examples/ffi_smoke.c`.
//!
//! Reproduces the smoke client's experiments through the **native**
//! `Experiment` API — no FFI — and prints the identical canonical line
//! format (doubles as raw IEEE-754 bit patterns). `scripts/ffi_smoke.sh`
//! diffs the two outputs byte-for-byte: any divergence between what the
//! C ABI reports and what the native API computes fails the check.

use adaptive_photonics::experiment::{collective_by_name, Experiment};
use aps_core::controller::by_name as controller_by_name;
use aps_core::sweep::SweepGrid;
use aps_core::ConfigChoice;
use aps_cost::units::MIB;
use aps_cost::{CostParams, ReconfigModel};
use aps_faas::{AdmissionPolicy, PoissonArrivals, TenantClass};
use aps_ffi::{ABI_MAJOR, ABI_MINOR, ABI_PATCH};
use aps_matrix::Matching;
use aps_sim::scenarios::hetero::{self, FabricKind, FailureStorm};
use aps_sim::{ServiceSwitching, TenantReport};
use aps_topology::builders::ring_unidirectional;

const ALPHA_S: f64 = 100e-9;
const BANDWIDTH_GBPS: f64 = 800.0;
const DELTA_S: f64 = 100e-9;
const ALPHA_R_S: f64 = 10e-6;

fn experiment(
    ports: usize,
    controller: &str,
) -> Experiment<adaptive_photonics::experiment::Unbound> {
    Experiment::domain(ring_unidirectional(ports).expect("valid ring"))
        .params(CostParams::new(ALPHA_S, BANDWIDTH_GBPS, DELTA_S).expect("valid params"))
        .reconfig(ReconfigModel::constant(ALPHA_R_S).expect("valid delay"))
        .controller(controller_by_name(controller).expect("shipped controller"))
}

fn fabric(kind: FabricKind, n: usize, storm: Option<FailureStorm>) -> Box<dyn aps_fabric::Fabric> {
    hetero::build_fabric_stormy(
        kind,
        Matching::shift(n, 1).expect("valid shift"),
        ReconfigModel::constant(ALPHA_R_S).expect("valid delay"),
        storm,
    )
    .expect("buildable fabric")
}

/// One detail row, matching `aps_run_row_t`.
struct Row {
    index: u64,
    total_ps: u64,
    reconfig_ps: u64,
    transfer_ps: u64,
    arbitration_ps: u64,
}

fn collective_rows(run: &adaptive_photonics::experiment::SimRun) -> Vec<Row> {
    run.report
        .steps
        .iter()
        .enumerate()
        .map(|(i, s)| Row {
            index: i as u64,
            total_ps: s.total_ps(),
            reconfig_ps: s.reconfig_ps,
            transfer_ps: s.transfer_ps,
            arbitration_ps: s.arbitration_ps,
        })
        .collect()
}

fn tenant_rows(reports: &[TenantReport]) -> Vec<Row> {
    reports
        .iter()
        .enumerate()
        .map(|(i, t)| Row {
            index: i as u64,
            total_ps: t.finish_ps,
            reconfig_ps: t.report.steps.iter().map(|s| s.reconfig_ps).sum(),
            transfer_ps: t.report.steps.iter().map(|s| s.transfer_ps).sum(),
            arbitration_ps: t.arbitration_ps(),
        })
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn print_sim(tag: &str, completion_ps: u64, events: u64, speedup: f64, rows: &[Row]) {
    let reconfig_ps: u64 = rows.iter().map(|r| r.reconfig_ps).sum();
    let transfer_ps: u64 = rows.iter().map(|r| r.transfer_ps).sum();
    let arbitration_ps: u64 = rows.iter().map(|r| r.arbitration_ps).sum();
    println!(
        "{tag} completion_ps={completion_ps} rows={} events={events} \
         reconfig_ps={reconfig_ps} transfer_ps={transfer_ps} \
         arbitration_ps={arbitration_ps} speedup={:016x}",
        rows.len(),
        speedup.to_bits()
    );
    for r in rows {
        println!(
            "{tag}.row index={} total_ps={} reconfig_ps={} transfer_ps={} arbitration_ps={}",
            r.index, r.total_ps, r.reconfig_ps, r.transfer_ps, r.arbitration_ps
        );
    }
}

fn scenario_run(
    name: &str,
    controller: &str,
    kind: FabricKind,
    storm: Option<FailureStorm>,
) -> Vec<TenantReport> {
    let scenario = hetero::by_name(name, MIB).expect("shipped scenario");
    let n = scenario.n;
    let mut shared = experiment(n, controller).scenario(scenario);
    shared.plan().expect("plannable scenario");
    let mut fab = fabric(kind, n, storm);
    shared
        .simulate_on(fab.as_mut())
        .expect("runnable scenario")
        .into_iter()
        .map(|r| r.expect("healthy tenant"))
        .collect()
}

fn main() {
    println!("abi {ABI_MAJOR}.{ABI_MINOR}.{ABI_PATCH}");

    // 1. Collective on the optical baseline: plan, then simulate.
    {
        let collective = collective_by_name("hd-allreduce", 16, MIB)
            .expect("shipped family")
            .expect("valid size");
        let plan = experiment(16, "opt")
            .collective(&collective)
            .plan()
            .expect("plannable");
        let matched = (0..plan.switches.len())
            .filter(|&i| plan.switches.choice(i) == ConfigChoice::Matched)
            .count();
        println!(
            "plan steps={} matched={matched} events={} total_s={:016x} \
             reconfig_s={:016x} transmission_s={:016x}",
            plan.switches.len(),
            plan.report.reconfig_events,
            plan.report.total_s().to_bits(),
            plan.report.reconfig_s.to_bits(),
            plan.report.transmission_s.to_bits()
        );

        let mut fab = fabric(FabricKind::Optical, 16, None);
        let run = experiment(16, "opt")
            .collective(&collective)
            .simulate_on(fab.as_mut())
            .expect("runnable");
        let mut base_fab = fabric(FabricKind::Optical, 16, None);
        let baseline = experiment(16, "static")
            .collective(&collective)
            .simulate_on(base_fab.as_mut())
            .expect("runnable baseline");
        let speedup = baseline.report.total_ps as f64 / run.report.total_ps.max(1) as f64;
        print_sim(
            "sim",
            run.report.total_ps,
            run.report.reconfig_events() as u64,
            speedup,
            &collective_rows(&run),
        );
    }

    // 2. Heterogeneous scenario: stormy hybrid fabric, greedy controller.
    {
        let storm = || Some(FailureStorm::new(42));
        let adapted = scenario_run("hetero-hybrid", "greedy", FabricKind::Hybrid, storm());
        let baseline = scenario_run("hetero-hybrid", "static", FabricKind::Hybrid, storm());
        let completion = adapted.iter().map(|t| t.finish_ps).max().unwrap_or(0);
        let base = baseline.iter().map(|t| t.finish_ps).max().unwrap_or(0);
        let events = adapted
            .iter()
            .map(|t| t.report.reconfig_events() as u64)
            .sum();
        print_sim(
            "hetero",
            completion,
            events,
            base as f64 / completion.max(1) as f64,
            &tenant_rows(&adapted),
        );
    }

    // 3. Multi-wavelength scenario on the wavelength bank.
    {
        let adapted = scenario_run("multi-wavelength", "opt", FabricKind::WavelengthBank, None);
        let baseline = scenario_run(
            "multi-wavelength",
            "static",
            FabricKind::WavelengthBank,
            None,
        );
        let completion = adapted.iter().map(|t| t.finish_ps).max().unwrap_or(0);
        let base = baseline.iter().map(|t| t.finish_ps).max().unwrap_or(0);
        let events = adapted
            .iter()
            .map(|t| t.report.reconfig_events() as u64)
            .sum();
        print_sim(
            "bank",
            completion,
            events,
            base as f64 / completion.max(1) as f64,
            &tenant_rows(&adapted),
        );
    }

    // 4. Policy sweep over a small alpha_r x message-size grid.
    {
        let result = experiment(8, "opt")
            .collective_family(|m| collective_by_name("alltoall", 8, m).expect("shipped family"))
            .sweep(&SweepGrid {
                reconf_delays_s: vec![1e-6, 10e-6],
                message_bytes: vec![MIB, 4.0 * MIB],
            })
            .expect("sweepable");
        let mut index = 0usize;
        for row in &result.cells {
            for cell in row {
                println!(
                    "sweep.cell index={index} static={:016x} bvn={:016x} opt={:016x} \
                     threshold={:016x}",
                    cell.t_static_s.to_bits(),
                    cell.t_bvn_s.to_bits(),
                    cell.t_opt_s.to_bits(),
                    cell.t_threshold_s.to_bits()
                );
                index += 1;
            }
        }
    }

    // 5. Fabric-as-a-service: one bursty class, bounded-queue admission.
    {
        let collective = collective_by_name("hd-allreduce", 8, MIB)
            .expect("shipped family")
            .expect("valid size");
        let schedule = collective.schedule;
        let class = TenantClass::new(
            "burst",
            8,
            Matching::shift(8, 1).expect("valid shift"),
            ServiceSwitching::Uniform(ConfigChoice::Matched),
            Box::new(PoissonArrivals::new(2000.0, Some(24), 7).expect("valid arrivals")),
            Box::new(move |_id: u64| -> Box<dyn aps_collectives::Workload> {
                Box::new(aps_collectives::ScheduleStream::new(schedule.clone()))
            }),
        );
        let mut fab = fabric(FabricKind::Optical, 16, None);
        let summary = experiment(16, "opt")
            .service(vec![class])
            .admission(AdmissionPolicy::Queue { capacity: 4 })
            .run_on(fab.as_mut())
            .expect("runnable service")
            .summary;
        println!(
            "service makespan_ps={} offered={} completed={} steps={} events={} classes={}",
            summary.makespan_ps,
            summary.offered(),
            summary.completed(),
            summary.steps.steps,
            summary.steps.reconfig_events,
            summary.tenants.len()
        );
        for (name, t) in summary.class_names.iter().zip(&summary.tenants) {
            println!(
                "slo name={name} offered={} admitted={} queued={} completed={} p50={} p99={} \
                 max={} wait_p99={} goodput={:016x}",
                t.offered,
                t.admitted,
                t.queued,
                t.completed,
                t.completion.p50_ps().unwrap_or(0),
                t.completion.p99_ps().unwrap_or(0),
                t.completion.max_ps(),
                t.wait.p99_ps().unwrap_or(0),
                t.goodput().to_bits()
            );
        }
    }
}
