//! `aps-ffi`: the stable C embedding ABI for the adaptive-photonics
//! engine.
//!
//! The crate builds as a `cdylib`/`staticlib` (plus an `rlib` so Rust
//! tests can call the exact exported functions in-process) and exposes
//! the engine's front door to foreign callers:
//!
//! * **Versioned entry points** — [`api::aps_abi_version`] packs a
//!   semver triple; callers reject a major mismatch before touching
//!   anything else, and every in/out struct carries a `struct_size`
//!   first field the library checks against its own layout.
//! * **Typed opaque handles** — foreign code never holds pointers.
//!   Experiments, simulation runs and service summaries live in
//!   slot+generation [`handle::HandleTable`]s; a stale handle or a
//!   double-destroy returns a typed [`status::ApsStatus`] instead of
//!   undefined behavior.
//! * **No panics across the boundary** — every entry point runs under
//!   `catch_unwind`; a panic becomes `APS_STATUS_PANICKED` with the
//!   message readable via [`error::aps_last_error_message`].
//! * **The full front door** — build an experiment (ports, α/β/δ cost
//!   parameters, α_r reconfiguration delay, controller by name,
//!   heterogeneous fabric kind, seeded failure storm), bind a
//!   collective / scenario / service-class mix, then plan, simulate,
//!   sweep or run the service and read flat `#[repr(C)]` summaries
//!   back through caller-owned buffers.
//!
//! The C view of all of this is the hand-written header
//! `include/adaptive_photonics.h` at the repository root;
//! `examples/ffi_smoke.c` is a complete embedding client that
//! cross-checks every summary byte-for-byte against the native oracle
//! (`cargo run -p aps-ffi --example ffi_oracle`).

pub mod api;
pub mod error;
pub mod handle;
pub mod status;

pub use api::{aps_abi_version, ABI_MAJOR, ABI_MINOR, ABI_PATCH};
pub use status::ApsStatus;
