//! Thread-local last-error storage behind `aps_last_error_message()`.

use std::cell::RefCell;
use std::ffi::{c_char, CString};

thread_local! {
    /// The message of the last failing call on this thread. Kept alive
    /// until the next failure on the same thread, so the pointer
    /// returned by [`aps_last_error_message`] stays valid across
    /// intervening *successful* calls.
    static LAST_ERROR: RefCell<CString> = RefCell::new(CString::default());
}

/// Records `message` as the thread's last error. Interior NULs (which
/// `CString` rejects) are replaced so storage never fails.
pub fn set_last_error(message: &str) {
    let owned = CString::new(message)
        .unwrap_or_else(|_| CString::new(message.replace('\0', "?")).expect("NULs replaced"));
    LAST_ERROR.with(|e| *e.borrow_mut() = owned);
}

/// The message of the most recent failing ABI call on the calling
/// thread, as a NUL-terminated UTF-8 string. Empty until the first
/// failure. The pointer is owned by the library and valid until the
/// next failing call on the same thread; callers must not free it.
#[no_mangle]
pub extern "C" fn aps_last_error_message() -> *const c_char {
    LAST_ERROR.with(|e| e.borrow().as_ptr())
}
