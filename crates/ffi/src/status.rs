//! The stable status code every entry point returns.

/// `aps_status_t`: the C-visible result of every ABI call. Values are
/// part of the stable ABI — append, never renumber.
#[repr(i32)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApsStatus {
    /// Success.
    Ok = 0,
    /// A required pointer argument was null.
    NullArgument = 1,
    /// A string argument was not valid UTF-8.
    InvalidUtf8 = 2,
    /// An argument failed validation (range, finiteness, enum value).
    InvalidArgument = 3,
    /// No shipped controller has the given name.
    UnknownController = 4,
    /// No scenario (base or heterogeneous pack) has the given name.
    UnknownScenario = 5,
    /// No collective family has the given name.
    UnknownWorkload = 6,
    /// A struct's `struct_size` field does not match this library —
    /// caller and library were built against different headers.
    StructSizeMismatch = 7,
    /// The handle is stale: already destroyed, never issued, or zero.
    StaleHandle = 8,
    /// The handle table is at capacity.
    HandleExhausted = 9,
    /// A caller-owned buffer is too small; the required count is in the
    /// call's `written`/`needed` out-parameter.
    BufferTooSmall = 10,
    /// The experiment has no workload bound for the requested run.
    WorkloadUnbound = 11,
    /// Planning/cost-model failure; details via `aps_last_error_message`.
    Core = 12,
    /// Simulation failure; details via `aps_last_error_message`.
    Sim = 13,
    /// Collective construction failure; details via
    /// `aps_last_error_message`.
    Collective = 14,
    /// Service-engine failure; details via `aps_last_error_message`.
    Service = 15,
    /// Fabric device failure; details via `aps_last_error_message`.
    Fabric = 16,
    /// The engine panicked; the panic was caught at the boundary and
    /// its message stored in `aps_last_error_message`.
    Panicked = 17,
}

impl ApsStatus {
    /// The stable C identifier of a status, for diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            Self::Ok => "APS_STATUS_OK",
            Self::NullArgument => "APS_STATUS_NULL_ARGUMENT",
            Self::InvalidUtf8 => "APS_STATUS_INVALID_UTF8",
            Self::InvalidArgument => "APS_STATUS_INVALID_ARGUMENT",
            Self::UnknownController => "APS_STATUS_UNKNOWN_CONTROLLER",
            Self::UnknownScenario => "APS_STATUS_UNKNOWN_SCENARIO",
            Self::UnknownWorkload => "APS_STATUS_UNKNOWN_WORKLOAD",
            Self::StructSizeMismatch => "APS_STATUS_STRUCT_SIZE_MISMATCH",
            Self::StaleHandle => "APS_STATUS_STALE_HANDLE",
            Self::HandleExhausted => "APS_STATUS_HANDLE_EXHAUSTED",
            Self::BufferTooSmall => "APS_STATUS_BUFFER_TOO_SMALL",
            Self::WorkloadUnbound => "APS_STATUS_WORKLOAD_UNBOUND",
            Self::Core => "APS_STATUS_CORE",
            Self::Sim => "APS_STATUS_SIM",
            Self::Collective => "APS_STATUS_COLLECTIVE",
            Self::Service => "APS_STATUS_SERVICE",
            Self::Fabric => "APS_STATUS_FABRIC",
            Self::Panicked => "APS_STATUS_PANICKED",
        }
    }

    /// Every status, for table-driven diagnostics.
    pub fn all() -> &'static [ApsStatus] {
        &[
            Self::Ok,
            Self::NullArgument,
            Self::InvalidUtf8,
            Self::InvalidArgument,
            Self::UnknownController,
            Self::UnknownScenario,
            Self::UnknownWorkload,
            Self::StructSizeMismatch,
            Self::StaleHandle,
            Self::HandleExhausted,
            Self::BufferTooSmall,
            Self::WorkloadUnbound,
            Self::Core,
            Self::Sim,
            Self::Collective,
            Self::Service,
            Self::Fabric,
            Self::Panicked,
        ]
    }
}

impl From<crate::handle::HandleError> for ApsStatus {
    fn from(e: crate::handle::HandleError) -> Self {
        match e {
            crate::handle::HandleError::Stale => Self::StaleHandle,
            crate::handle::HandleError::Exhausted => Self::HandleExhausted,
        }
    }
}
