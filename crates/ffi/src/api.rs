//! The `extern "C"` entry points and their flat `#[repr(C)]` shapes.
//!
//! Conventions (see `include/adaptive_photonics.h` for the C view):
//!
//! * Every entry point returns [`ApsStatus`] and stores a message via
//!   [`crate::error::set_last_error`] on failure.
//! * Panics never cross the boundary: every entry point runs under
//!   `catch_unwind` and folds a panic into [`ApsStatus::Panicked`].
//! * Callers hold opaque 64-bit handles from the slot+generation
//!   [`crate::handle::HandleTable`]; stale handles and double-destroys
//!   return [`ApsStatus::StaleHandle`], never undefined behavior.
//! * Every in/out struct starts with a `struct_size` field the library
//!   checks against its own layout ([`ApsStatus::StructSizeMismatch`]
//!   catches header drift before any field is read).

// These entry points ARE the unsafe boundary: every pointer argument is
// null-checked and size-guarded before the first dereference, and the
// pointer contracts are documented in the header. Marking them `unsafe
// fn` would change nothing for C callers (C has no unsafe) while forcing
// unsafe blocks on every in-process test of the validated wrappers.
#![allow(clippy::not_unsafe_ptr_arg_deref)]

use std::ffi::{c_char, CStr};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{LazyLock, Mutex, MutexGuard};

use adaptive_photonics::experiment::{collective_by_name, Experiment};
use aps_collectives::{ScheduleStream, Workload};
use aps_core::controller::{by_name as controller_by_name, Static};
use aps_core::sweep::SweepGrid;
use aps_core::ConfigChoice;
use aps_cost::units::picos_to_secs;
use aps_cost::{CostParams, ReconfigModel};
use aps_faas::{AdmissionPolicy, PoissonArrivals, ServiceSummary};
use aps_fabric::Fabric;
use aps_matrix::Matching;
use aps_sim::scenarios::hetero::{self, FabricKind, FailureStorm};
use aps_sim::{ServiceSwitching, SimError, TenantReport};
use aps_topology::builders::ring_unidirectional;

use crate::error::set_last_error;
use crate::handle::HandleTable;
use crate::status::ApsStatus;

// ---------------------------------------------------------------------------
// ABI version
// ---------------------------------------------------------------------------

/// Bumped on breaking layout or semantics changes.
pub const ABI_MAJOR: u32 = 1;
/// Bumped on backward-compatible additions.
pub const ABI_MINOR: u32 = 0;
/// Bumped on fixes with no interface change.
pub const ABI_PATCH: u32 = 0;

/// The library's ABI version, packed `major << 16 | minor << 8 | patch`.
/// Callers reject a library whose major differs from their header's.
#[no_mangle]
pub extern "C" fn aps_abi_version() -> u32 {
    (ABI_MAJOR << 16) | (ABI_MINOR << 8) | ABI_PATCH
}

/// The semver triple, unpacked into caller-owned slots.
#[no_mangle]
pub extern "C" fn aps_abi_version_triple(
    major: *mut u32,
    minor: *mut u32,
    patch: *mut u32,
) -> ApsStatus {
    guarded(|| {
        if major.is_null() || minor.is_null() || patch.is_null() {
            return fail(ApsStatus::NullArgument, "version out-pointers are null");
        }
        unsafe {
            *major = ABI_MAJOR;
            *minor = ABI_MINOR;
            *patch = ABI_PATCH;
        }
        ApsStatus::Ok
    })
}

/// The stable C identifier of a status code (`"APS_STATUS_OK"`, …), or
/// `"APS_STATUS_UNKNOWN"` for values outside the enum. Static storage;
/// never freed by the caller.
#[no_mangle]
pub extern "C" fn aps_status_name(status: i32) -> *const c_char {
    let name: &'static CStr = match ApsStatus::all().iter().find(|s| **s as i32 == status) {
        Some(ApsStatus::Ok) => c"APS_STATUS_OK",
        Some(ApsStatus::NullArgument) => c"APS_STATUS_NULL_ARGUMENT",
        Some(ApsStatus::InvalidUtf8) => c"APS_STATUS_INVALID_UTF8",
        Some(ApsStatus::InvalidArgument) => c"APS_STATUS_INVALID_ARGUMENT",
        Some(ApsStatus::UnknownController) => c"APS_STATUS_UNKNOWN_CONTROLLER",
        Some(ApsStatus::UnknownScenario) => c"APS_STATUS_UNKNOWN_SCENARIO",
        Some(ApsStatus::UnknownWorkload) => c"APS_STATUS_UNKNOWN_WORKLOAD",
        Some(ApsStatus::StructSizeMismatch) => c"APS_STATUS_STRUCT_SIZE_MISMATCH",
        Some(ApsStatus::StaleHandle) => c"APS_STATUS_STALE_HANDLE",
        Some(ApsStatus::HandleExhausted) => c"APS_STATUS_HANDLE_EXHAUSTED",
        Some(ApsStatus::BufferTooSmall) => c"APS_STATUS_BUFFER_TOO_SMALL",
        Some(ApsStatus::WorkloadUnbound) => c"APS_STATUS_WORKLOAD_UNBOUND",
        Some(ApsStatus::Core) => c"APS_STATUS_CORE",
        Some(ApsStatus::Sim) => c"APS_STATUS_SIM",
        Some(ApsStatus::Collective) => c"APS_STATUS_COLLECTIVE",
        Some(ApsStatus::Service) => c"APS_STATUS_SERVICE",
        Some(ApsStatus::Fabric) => c"APS_STATUS_FABRIC",
        Some(ApsStatus::Panicked) => c"APS_STATUS_PANICKED",
        None => c"APS_STATUS_UNKNOWN",
    };
    name.as_ptr()
}

// ---------------------------------------------------------------------------
// repr(C) shapes
// ---------------------------------------------------------------------------

/// `aps_domain_config_t`: everything needed to stand up an experiment.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct ApsDomainConfig {
    /// Must be `sizeof(aps_domain_config_t)`.
    pub struct_size: usize,
    /// Fabric port count (the domain is a unidirectional ring of this
    /// size; scenario bindings override it with the scenario's own).
    pub ports: u32,
    /// Fixed per-step latency α in seconds (`<= 0` → paper default).
    pub alpha_s: f64,
    /// Line rate in Gbps (`<= 0` → paper default).
    pub bandwidth_gbps: f64,
    /// Per-hop propagation δ in seconds (`< 0` → paper default).
    pub delta_s: f64,
    /// Reconfiguration delay α_r in seconds.
    pub alpha_r_s: f64,
    /// Controller name (`static`, `bvn`, `threshold`, `opt`, `greedy`);
    /// null → `opt`.
    pub controller: *const c_char,
    /// Fabric medium, an [`ApsFabricKind`] value.
    pub fabric: i32,
    /// Nonzero → apply the seeded failure storm to the fabric.
    pub storm: i32,
    /// Storm seed (used only when `storm` is nonzero).
    pub storm_seed: u64,
}

/// `aps_fabric_kind_t` values.
#[repr(i32)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApsFabricKind {
    /// All-optical circuit switch (the paper's baseline device).
    Optical = 0,
    /// All-electrical crossbar: zero-cost reconfiguration.
    Electrical = 1,
    /// Half electrical, half optical composite.
    Hybrid = 2,
    /// Multi-wavelength bank with per-λ retune costs.
    WavelengthBank = 3,
}

/// `aps_plan_summary_t`: the cost-model pricing of a planned schedule.
#[repr(C)]
#[derive(Debug, Clone, Copy, Default)]
pub struct ApsPlanSummary {
    /// Must be `sizeof(aps_plan_summary_t)`.
    pub struct_size: usize,
    /// Steps in the collective.
    pub steps: u64,
    /// Steps the plan runs matched (reconfigured).
    pub matched_steps: u64,
    /// Reconfiguration events charged.
    pub reconfig_events: u64,
    /// `s·α` term, seconds.
    pub latency_s: f64,
    /// Propagation term, seconds.
    pub propagation_s: f64,
    /// Transmission term, seconds.
    pub transmission_s: f64,
    /// Reconfiguration term, seconds.
    pub reconfig_s: f64,
    /// Total planned completion, seconds.
    pub total_s: f64,
}

/// `aps_sim_summary_t`: the roll-up of a simulation run.
#[repr(C)]
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ApsSimSummary {
    /// Must be `sizeof(aps_sim_summary_t)`.
    pub struct_size: usize,
    /// Completion time in integer picoseconds (collective total, or the
    /// last tenant's finish for scenario runs).
    pub completion_ps: u64,
    /// Completion time in seconds.
    pub completion_s: f64,
    /// Static-baseline completion / this run's completion (1.0 when the
    /// experiment's controller *is* `static`).
    pub speedup_vs_static: f64,
    /// Detail rows available via `aps_simrun_rows` (steps for a
    /// collective, tenants for a scenario).
    pub rows: u64,
    /// Physical reconfiguration events.
    pub reconfig_events: u64,
    /// Summed visible reconfiguration stalls, picoseconds.
    pub reconfig_ps: u64,
    /// Summed transfer time, picoseconds.
    pub transfer_ps: u64,
    /// Summed controller-arbitration queueing, picoseconds.
    pub arbitration_ps: u64,
}

/// `aps_run_row_t`: one detail row of a run — a collective step, or one
/// tenant of a scenario.
#[repr(C)]
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ApsRunRow {
    /// Step index, or tenant index.
    pub index: u64,
    /// Step total, or the tenant's finish instant, picoseconds.
    pub total_ps: u64,
    /// Reconfiguration stall, picoseconds.
    pub reconfig_ps: u64,
    /// Transfer time, picoseconds.
    pub transfer_ps: u64,
    /// Controller-arbitration queueing, picoseconds.
    pub arbitration_ps: u64,
}

/// `aps_sweep_cell_t`: one (α_r, message-size) sweep cell.
#[repr(C)]
#[derive(Debug, Clone, Copy, Default)]
pub struct ApsSweepCell {
    /// Static (never reconfigure) completion, seconds.
    pub t_static_s: f64,
    /// Per-step BvN threshold policy completion, seconds.
    pub t_bvn_s: f64,
    /// DP-optimal completion, seconds.
    pub t_opt_s: f64,
    /// Threshold policy completion, seconds.
    pub t_threshold_s: f64,
}

/// `aps_service_class_t`: one tenant class of a service experiment.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct ApsServiceClass {
    /// Must be `sizeof(aps_service_class_t)`.
    pub struct_size: usize,
    /// Class name (required).
    pub name: *const c_char,
    /// Ports per job.
    pub ports: u32,
    /// Collective family each job runs (`hd-allreduce`, …).
    pub workload: *const c_char,
    /// Message volume per job, bytes.
    pub message_bytes: f64,
    /// Poisson arrival rate, jobs per simulated second.
    pub arrival_rate_hz: f64,
    /// Jobs offered by this class (0 = unbounded; cap globally with
    /// `aps_experiment_set_max_jobs`).
    pub jobs: u64,
    /// Arrival-process seed.
    pub seed: u64,
    /// Nonzero → every step reconfigured to its matching; zero → stay
    /// on the base ring.
    pub matched: i32,
}

/// `aps_service_stats_t`: the roll-up of a service run.
#[repr(C)]
#[derive(Debug, Clone, Copy, Default)]
pub struct ApsServiceStats {
    /// Must be `sizeof(aps_service_stats_t)`.
    pub struct_size: usize,
    /// When the last job departed, picoseconds.
    pub makespan_ps: u64,
    /// Makespan in seconds.
    pub makespan_s: f64,
    /// Jobs offered across all classes.
    pub offered: u64,
    /// Jobs completed across all classes.
    pub completed: u64,
    /// Steps executed across all jobs.
    pub steps: u64,
    /// Physical reconfiguration events across all jobs.
    pub reconfig_events: u64,
    /// Tenant classes in the run (index bound for the per-class calls).
    pub classes: u64,
}

/// `aps_class_slo_t`: one class's SLO accounting.
#[repr(C)]
#[derive(Debug, Clone, Copy, Default)]
pub struct ApsClassSlo {
    /// Must be `sizeof(aps_class_slo_t)`.
    pub struct_size: usize,
    /// Jobs the arrival process offered.
    pub offered: u64,
    /// Jobs admitted.
    pub admitted: u64,
    /// Jobs that queued before admission.
    pub queued: u64,
    /// Arrivals stalled by backpressure.
    pub backpressured: u64,
    /// Rejected: larger than the fabric.
    pub rejected_too_large: u64,
    /// Rejected: partition busy (reject policy).
    pub rejected_ports_busy: u64,
    /// Rejected: ingress queue full.
    pub rejected_queue_full: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Jobs stopped by a step error.
    pub failed: u64,
    /// p50 job completion latency, picoseconds (0 when no jobs).
    pub completion_p50_ps: u64,
    /// p99 job completion latency, picoseconds (0 when no jobs).
    pub completion_p99_ps: u64,
    /// Worst job completion latency, picoseconds.
    pub completion_max_ps: u64,
    /// p50 queueing wait, picoseconds (0 when no jobs).
    pub wait_p50_ps: u64,
    /// p99 queueing wait, picoseconds (0 when no jobs).
    pub wait_p99_ps: u64,
    /// Mean job completion latency, picoseconds.
    pub completion_mean_ps: f64,
    /// Completed / offered (1.0 when nothing was offered).
    pub goodput: f64,
}

/// `aps_admission_policy_t` values.
#[repr(i32)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApsAdmissionPolicy {
    /// Turn away jobs whose ports are busy.
    Reject = 0,
    /// Bounded ingress queue.
    Queue = 1,
    /// Stall the arrival source at a bounded queue.
    Backpressure = 2,
}

// ---------------------------------------------------------------------------
// Internal experiment state
// ---------------------------------------------------------------------------

/// One service class, stored by value until the run materializes it.
#[derive(Debug, Clone)]
struct ServiceClassSpec {
    name: String,
    ports: usize,
    workload: String,
    message_bytes: f64,
    arrival_rate_hz: f64,
    jobs: Option<u64>,
    seed: u64,
    matched: bool,
}

/// What the experiment will run.
#[derive(Debug, Clone)]
enum Binding {
    None,
    Collective { family: String, bytes: f64 },
    Scenario { name: String, bytes: f64 },
    Service { classes: Vec<ServiceClassSpec> },
}

/// The foreign-owned experiment: plain configuration, materialized into
/// a native [`Experiment`] per run so repeated runs replay
/// bit-identically.
#[derive(Debug, Clone)]
struct FfiExperiment {
    ports: usize,
    params: CostParams,
    reconfig: ReconfigModel,
    controller: String,
    fabric: FabricKind,
    storm: Option<FailureStorm>,
    binding: Binding,
    admission: AdmissionPolicy,
    max_jobs: Option<u64>,
}

/// A finished simulation, frozen into its C shapes.
#[derive(Debug, Clone)]
struct FfiRun {
    summary: ApsSimSummary,
    rows: Vec<ApsRunRow>,
}

static EXPERIMENTS: LazyLock<Mutex<HandleTable<FfiExperiment>>> =
    LazyLock::new(|| Mutex::new(HandleTable::with_capacity(1024)));
static RUNS: LazyLock<Mutex<HandleTable<FfiRun>>> =
    LazyLock::new(|| Mutex::new(HandleTable::with_capacity(4096)));
static SERVICES: LazyLock<Mutex<HandleTable<ServiceSummary>>> =
    LazyLock::new(|| Mutex::new(HandleTable::with_capacity(4096)));

/// Locks a table, surviving a poisoned mutex (a panic in another call
/// already reported [`ApsStatus::Panicked`]; the tables hold plain data
/// and stay usable).
fn lock<T>(table: &'static Mutex<HandleTable<T>>) -> MutexGuard<'static, HandleTable<T>> {
    table.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs `f` with panics caught and folded into [`ApsStatus::Panicked`].
fn guarded<F: FnOnce() -> ApsStatus>(f: F) -> ApsStatus {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(status) => status,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic of unknown type".into());
            set_last_error(&format!("engine panicked: {msg}"));
            ApsStatus::Panicked
        }
    }
}

/// Records `message` and returns `status` — the one-liner failures use.
fn fail(status: ApsStatus, message: &str) -> ApsStatus {
    set_last_error(message);
    status
}

/// Reads a required C string argument.
fn read_str<'a>(ptr: *const c_char, what: &str) -> Result<&'a str, ApsStatus> {
    if ptr.is_null() {
        return Err(fail(ApsStatus::NullArgument, &format!("{what} is null")));
    }
    unsafe { CStr::from_ptr(ptr) }
        .to_str()
        .map_err(|_| fail(ApsStatus::InvalidUtf8, &format!("{what} is not UTF-8")))
}

/// Checks an out-struct pointer and its embedded `struct_size`.
///
/// # Safety
///
/// `ptr` must be null (reported) or valid for writes of `T`.
unsafe fn check_out_struct<T>(ptr: *mut T, size_of: usize, what: &str) -> Result<(), ApsStatus> {
    if ptr.is_null() {
        return Err(fail(ApsStatus::NullArgument, &format!("{what} is null")));
    }
    if size_of != std::mem::size_of::<T>() {
        return Err(fail(
            ApsStatus::StructSizeMismatch,
            &format!(
                "{what}.struct_size = {size_of}, library expects {} — header/library mismatch",
                std::mem::size_of::<T>()
            ),
        ));
    }
    Ok(())
}

impl FfiExperiment {
    /// The per-run fabric: the configured medium, freshly built and
    /// freshly stormed, over an `n`-port ring initial state.
    fn fabric(&self, n: usize) -> Result<Box<dyn Fabric>, SimError> {
        let initial = Matching::shift(n, 1).map_err(|e| SimError::ConfigConflict { source: e })?;
        hetero::build_fabric_stormy(self.fabric, initial, self.reconfig, self.storm)
    }

    /// Materializes the unbound native experiment for an `n`-port run.
    fn experiment(
        &self,
        n: usize,
        controller: &'static dyn aps_core::controller::Controller,
    ) -> Result<Experiment<adaptive_photonics::experiment::Unbound>, ApsStatus> {
        let base = ring_unidirectional(n)
            .map_err(|e| fail(ApsStatus::InvalidArgument, &format!("bad domain: {e}")))?;
        Ok(Experiment::domain(base)
            .params(self.params)
            .reconfig(self.reconfig)
            .controller(controller))
    }

    /// The configured controller, resolved against the shipped set.
    fn controller(&self) -> Result<&'static dyn aps_core::controller::Controller, ApsStatus> {
        controller_by_name(&self.controller).ok_or_else(|| {
            fail(
                ApsStatus::UnknownController,
                &format!("unknown controller '{}'", self.controller),
            )
        })
    }
}

// ---------------------------------------------------------------------------
// Experiment lifecycle
// ---------------------------------------------------------------------------

/// Creates an experiment from a domain configuration; the handle goes
/// to `*out`. Destroy with `aps_experiment_destroy`.
#[no_mangle]
pub extern "C" fn aps_experiment_new(cfg: *const ApsDomainConfig, out: *mut u64) -> ApsStatus {
    guarded(|| {
        if out.is_null() {
            return fail(ApsStatus::NullArgument, "out handle is null");
        }
        if cfg.is_null() {
            return fail(ApsStatus::NullArgument, "config is null");
        }
        // The size guard must run before any other field is trusted.
        let size = unsafe { (*cfg).struct_size };
        if size != std::mem::size_of::<ApsDomainConfig>() {
            return fail(
                ApsStatus::StructSizeMismatch,
                &format!(
                    "aps_domain_config_t.struct_size = {size}, library expects {} — \
                     header/library mismatch",
                    std::mem::size_of::<ApsDomainConfig>()
                ),
            );
        }
        let cfg = unsafe { *cfg };
        if cfg.ports < 2 {
            return fail(ApsStatus::InvalidArgument, "ports must be >= 2");
        }
        let defaults = CostParams::paper_defaults();
        let alpha_s = if cfg.alpha_s > 0.0 {
            cfg.alpha_s
        } else {
            defaults.alpha_s
        };
        // The paper's §3.4 line rate; kept literal because CostParams
        // only exposes the derived β.
        let bandwidth_gbps = if cfg.bandwidth_gbps > 0.0 {
            cfg.bandwidth_gbps
        } else {
            800.0
        };
        let delta_s = if cfg.delta_s >= 0.0 {
            cfg.delta_s
        } else {
            defaults.delta_s
        };
        let params = match CostParams::new(alpha_s, bandwidth_gbps, delta_s) {
            Ok(p) => p,
            Err(e) => return fail(ApsStatus::InvalidArgument, &format!("bad cost params: {e}")),
        };
        let reconfig = match ReconfigModel::constant(cfg.alpha_r_s) {
            Ok(r) => r,
            Err(e) => return fail(ApsStatus::InvalidArgument, &format!("bad alpha_r: {e}")),
        };
        let controller = if cfg.controller.is_null() {
            "opt".to_string()
        } else {
            match read_str(cfg.controller, "controller") {
                Ok(s) => s.to_string(),
                Err(status) => return status,
            }
        };
        if controller_by_name(&controller).is_none() {
            return fail(
                ApsStatus::UnknownController,
                &format!("unknown controller '{controller}'"),
            );
        }
        let fabric = match cfg.fabric {
            0 => FabricKind::Optical,
            1 => FabricKind::Electrical,
            2 => FabricKind::Hybrid,
            3 => FabricKind::WavelengthBank,
            k => {
                return fail(
                    ApsStatus::InvalidArgument,
                    &format!("unknown fabric kind {k}"),
                )
            }
        };
        let storm = (cfg.storm != 0).then(|| FailureStorm::new(cfg.storm_seed));
        let exp = FfiExperiment {
            ports: cfg.ports as usize,
            params,
            reconfig,
            controller,
            fabric,
            storm,
            binding: Binding::None,
            admission: AdmissionPolicy::Reject,
            max_jobs: None,
        };
        match lock(&EXPERIMENTS).insert(exp) {
            Ok(handle) => {
                unsafe { *out = handle };
                ApsStatus::Ok
            }
            Err(e) => fail(e.into(), "experiment table exhausted"),
        }
    })
}

/// Destroys an experiment. A second destroy of the same handle returns
/// `APS_STATUS_STALE_HANDLE` — safe, typed, no double-free.
#[no_mangle]
pub extern "C" fn aps_experiment_destroy(experiment: u64) -> ApsStatus {
    guarded(|| match lock(&EXPERIMENTS).remove(experiment) {
        Ok(_) => ApsStatus::Ok,
        Err(e) => fail(e.into(), "experiment handle is stale"),
    })
}

/// Runs `f` on a live experiment.
fn with_experiment<F: FnOnce(&mut FfiExperiment) -> ApsStatus>(handle: u64, f: F) -> ApsStatus {
    let mut table = lock(&EXPERIMENTS);
    match table.get_mut(handle) {
        Ok(exp) => f(exp),
        Err(e) => fail(e.into(), "experiment handle is stale"),
    }
}

/// Binds a single collective (`hd-allreduce`, `ring-allreduce`,
/// `alltoall`, `broadcast`) of `message_bytes` to the experiment,
/// replacing any previous binding.
#[no_mangle]
pub extern "C" fn aps_experiment_bind_collective(
    experiment: u64,
    family: *const c_char,
    message_bytes: f64,
) -> ApsStatus {
    guarded(|| {
        let family = match read_str(family, "collective family") {
            Ok(s) => s.to_string(),
            Err(status) => return status,
        };
        with_experiment(experiment, |exp| {
            match collective_by_name(&family, exp.ports, message_bytes) {
                None => fail(
                    ApsStatus::UnknownWorkload,
                    &format!("unknown collective family '{family}'"),
                ),
                Some(Err(e)) => fail(
                    ApsStatus::Collective,
                    &format!("cannot build {family} on {} ports: {e}", exp.ports),
                ),
                Some(Ok(_)) => {
                    exp.binding = Binding::Collective {
                        family,
                        bytes: message_bytes,
                    };
                    ApsStatus::Ok
                }
            }
        })
    })
}

/// Binds a named multi-tenant scenario (base pack or heterogeneous
/// pack) at the given base volume, replacing any previous binding. The
/// scenario's own port count overrides the domain's.
#[no_mangle]
pub extern "C" fn aps_experiment_bind_scenario(
    experiment: u64,
    name: *const c_char,
    message_bytes: f64,
) -> ApsStatus {
    guarded(|| {
        let name = match read_str(name, "scenario name") {
            Ok(s) => s.to_string(),
            Err(status) => return status,
        };
        with_experiment(experiment, |exp| {
            if hetero::by_name(&name, message_bytes).is_none() {
                return fail(
                    ApsStatus::UnknownScenario,
                    &format!("unknown scenario '{name}'"),
                );
            }
            exp.binding = Binding::Scenario {
                name,
                bytes: message_bytes,
            };
            ApsStatus::Ok
        })
    })
}

/// Appends one tenant class to the experiment's service binding
/// (starting one if the experiment was bound to something else).
#[no_mangle]
pub extern "C" fn aps_experiment_add_service_class(
    experiment: u64,
    class: *const ApsServiceClass,
) -> ApsStatus {
    guarded(|| {
        if class.is_null() {
            return fail(ApsStatus::NullArgument, "class is null");
        }
        let size = unsafe { (*class).struct_size };
        if size != std::mem::size_of::<ApsServiceClass>() {
            return fail(
                ApsStatus::StructSizeMismatch,
                &format!(
                    "aps_service_class_t.struct_size = {size}, library expects {} — \
                     header/library mismatch",
                    std::mem::size_of::<ApsServiceClass>()
                ),
            );
        }
        let class = unsafe { *class };
        let name = match read_str(class.name, "class name") {
            Ok(s) => s.to_string(),
            Err(status) => return status,
        };
        let workload = match read_str(class.workload, "class workload") {
            Ok(s) => s.to_string(),
            Err(status) => return status,
        };
        if class.ports < 2 {
            return fail(ApsStatus::InvalidArgument, "class ports must be >= 2");
        }
        if !(class.arrival_rate_hz.is_finite() && class.arrival_rate_hz > 0.0) {
            return fail(
                ApsStatus::InvalidArgument,
                "arrival rate must be finite and positive",
            );
        }
        let spec = ServiceClassSpec {
            name,
            ports: class.ports as usize,
            workload,
            message_bytes: class.message_bytes,
            arrival_rate_hz: class.arrival_rate_hz,
            jobs: (class.jobs > 0).then_some(class.jobs),
            seed: class.seed,
            matched: class.matched != 0,
        };
        match collective_by_name(&spec.workload, spec.ports, spec.message_bytes) {
            None => {
                return fail(
                    ApsStatus::UnknownWorkload,
                    &format!("unknown collective family '{}'", spec.workload),
                )
            }
            Some(Err(e)) => {
                return fail(
                    ApsStatus::Collective,
                    &format!(
                        "cannot build {} on {} ports: {e}",
                        spec.workload, spec.ports
                    ),
                )
            }
            Some(Ok(_)) => {}
        }
        with_experiment(experiment, |exp| {
            if let Binding::Service { classes } = &mut exp.binding {
                classes.push(spec.clone());
            } else {
                exp.binding = Binding::Service {
                    classes: vec![spec.clone()],
                };
            }
            ApsStatus::Ok
        })
    })
}

/// Sets the admission policy for service runs. `capacity` is the queue
/// bound for the queue/backpressure policies (ignored for reject;
/// backpressure requires it positive).
#[no_mangle]
pub extern "C" fn aps_experiment_set_admission(
    experiment: u64,
    policy: i32,
    capacity: u64,
) -> ApsStatus {
    guarded(|| {
        let capacity = capacity as usize;
        let policy = match policy {
            0 => AdmissionPolicy::Reject,
            1 => AdmissionPolicy::Queue { capacity },
            2 if capacity == 0 => {
                return fail(
                    ApsStatus::InvalidArgument,
                    "backpressure requires a positive queue capacity",
                )
            }
            2 => AdmissionPolicy::Backpressure { capacity },
            p => {
                return fail(
                    ApsStatus::InvalidArgument,
                    &format!("unknown admission policy {p}"),
                )
            }
        };
        with_experiment(experiment, |exp| {
            exp.admission = policy;
            ApsStatus::Ok
        })
    })
}

/// Caps the total jobs a service run offers (0 clears the cap).
#[no_mangle]
pub extern "C" fn aps_experiment_set_max_jobs(experiment: u64, max_jobs: u64) -> ApsStatus {
    guarded(|| {
        with_experiment(experiment, |exp| {
            exp.max_jobs = (max_jobs > 0).then_some(max_jobs);
            ApsStatus::Ok
        })
    })
}

// ---------------------------------------------------------------------------
// Runs
// ---------------------------------------------------------------------------

/// Plans the bound collective under the experiment's controller and
/// prices the schedule with the eq. (7) cost model.
#[no_mangle]
pub extern "C" fn aps_experiment_plan(experiment: u64, out: *mut ApsPlanSummary) -> ApsStatus {
    guarded(|| {
        let size = if out.is_null() {
            0
        } else {
            unsafe { (*out).struct_size }
        };
        if let Err(status) = unsafe { check_out_struct(out, size, "plan summary") } {
            return status;
        }
        let exp = match snapshot(experiment) {
            Ok(e) => e,
            Err(status) => return status,
        };
        let Binding::Collective { family, bytes } = &exp.binding else {
            return fail(
                ApsStatus::WorkloadUnbound,
                "plan needs a bound collective (scenario and service runs plan internally)",
            );
        };
        let controller = match exp.controller() {
            Ok(c) => c,
            Err(status) => return status,
        };
        let collective = match collective_by_name(family, exp.ports, *bytes) {
            Some(Ok(c)) => c,
            Some(Err(e)) => return fail(ApsStatus::Collective, &format!("{e}")),
            None => return fail(ApsStatus::UnknownWorkload, "collective family vanished"),
        };
        let mut single = match exp.experiment(exp.ports, controller) {
            Ok(e) => e.collective(&collective),
            Err(status) => return status,
        };
        let plan = match single.plan() {
            Ok(p) => p,
            Err(e) => return fail(ApsStatus::Core, &format!("planning failed: {e}")),
        };
        let matched = (0..plan.switches.len())
            .filter(|&i| plan.switches.choice(i) == ConfigChoice::Matched)
            .count();
        unsafe {
            *out = ApsPlanSummary {
                struct_size: std::mem::size_of::<ApsPlanSummary>(),
                steps: plan.switches.len() as u64,
                matched_steps: matched as u64,
                reconfig_events: plan.report.reconfig_events as u64,
                latency_s: plan.report.latency_s,
                propagation_s: plan.report.propagation_s,
                transmission_s: plan.report.transmission_s,
                reconfig_s: plan.report.reconfig_s,
                total_s: plan.report.total_s(),
            };
        }
        ApsStatus::Ok
    })
}

/// Clones the experiment's configuration out of the table, so runs
/// don't hold the global lock.
fn snapshot(experiment: u64) -> Result<FfiExperiment, ApsStatus> {
    lock(&EXPERIMENTS)
        .get(experiment)
        .cloned()
        .map_err(|e| fail(e.into(), "experiment handle is stale"))
}

/// One collective run of `exp` under `controller`, on the configured
/// medium.
fn run_collective_once(
    exp: &FfiExperiment,
    family: &str,
    bytes: f64,
    controller: &'static dyn aps_core::controller::Controller,
) -> Result<adaptive_photonics::experiment::SimRun, ApsStatus> {
    let collective = match collective_by_name(family, exp.ports, bytes) {
        Some(Ok(c)) => c,
        Some(Err(e)) => return Err(fail(ApsStatus::Collective, &format!("{e}"))),
        None => {
            return Err(fail(
                ApsStatus::UnknownWorkload,
                "collective family vanished",
            ))
        }
    };
    let mut single = exp
        .experiment(exp.ports, controller)?
        .collective(&collective);
    let mut fabric = exp
        .fabric(exp.ports)
        .map_err(|e| fail(ApsStatus::Fabric, &format!("cannot build fabric: {e}")))?;
    single
        .simulate_on(fabric.as_mut())
        .map_err(|e| fail(ApsStatus::Sim, &format!("simulation failed: {e}")))
}

/// One scenario run of `exp` under `controller`: plan every tenant with
/// the controller, execute on the configured medium.
fn run_scenario_once(
    exp: &FfiExperiment,
    name: &str,
    bytes: f64,
    controller: &'static dyn aps_core::controller::Controller,
) -> Result<Vec<TenantReport>, ApsStatus> {
    let scenario = hetero::by_name(name, bytes).ok_or_else(|| {
        fail(
            ApsStatus::UnknownScenario,
            &format!("unknown scenario '{name}'"),
        )
    })?;
    let n = scenario.n;
    let mut shared = exp.experiment(n, controller)?.scenario(scenario);
    shared
        .plan()
        .map_err(|e| fail(ApsStatus::Core, &format!("planning failed: {e}")))?;
    let mut fabric = exp
        .fabric(n)
        .map_err(|e| fail(ApsStatus::Fabric, &format!("cannot build fabric: {e}")))?;
    let reports = shared
        .simulate_on(fabric.as_mut())
        .map_err(|e| fail(ApsStatus::Sim, &format!("scenario failed: {e}")))?;
    reports
        .into_iter()
        .map(|r| r.map_err(|e| fail(ApsStatus::Sim, &format!("tenant failed: {e}"))))
        .collect()
}

/// Simulates the bound workload (collective or scenario) under the
/// experiment's controller, plus a static-baseline run for
/// `speedup_vs_static`. The result is frozen behind a run handle;
/// destroy it with `aps_simrun_destroy`.
#[no_mangle]
pub extern "C" fn aps_experiment_simulate(experiment: u64, out_run: *mut u64) -> ApsStatus {
    guarded(|| {
        if out_run.is_null() {
            return fail(ApsStatus::NullArgument, "out run handle is null");
        }
        let exp = match snapshot(experiment) {
            Ok(e) => e,
            Err(status) => return status,
        };
        let controller = match exp.controller() {
            Ok(c) => c,
            Err(status) => return status,
        };
        let run = match &exp.binding {
            Binding::Collective { family, bytes } => {
                let adapted = match run_collective_once(&exp, family, *bytes, controller) {
                    Ok(r) => r,
                    Err(status) => return status,
                };
                let completion = adapted.report.total_ps;
                let speedup = if exp.controller == "static" {
                    1.0
                } else {
                    match run_collective_once(&exp, family, *bytes, &Static) {
                        Ok(s) => s.report.total_ps as f64 / completion.max(1) as f64,
                        Err(status) => return status,
                    }
                };
                let rows: Vec<ApsRunRow> = adapted
                    .report
                    .steps
                    .iter()
                    .enumerate()
                    .map(|(i, s)| ApsRunRow {
                        index: i as u64,
                        total_ps: s.total_ps(),
                        reconfig_ps: s.reconfig_ps,
                        transfer_ps: s.transfer_ps,
                        arbitration_ps: s.arbitration_ps,
                    })
                    .collect();
                FfiRun {
                    summary: ApsSimSummary {
                        struct_size: std::mem::size_of::<ApsSimSummary>(),
                        completion_ps: completion,
                        completion_s: picos_to_secs(completion),
                        speedup_vs_static: speedup,
                        rows: rows.len() as u64,
                        reconfig_events: adapted.report.reconfig_events() as u64,
                        reconfig_ps: adapted.report.steps.iter().map(|s| s.reconfig_ps).sum(),
                        transfer_ps: adapted.report.steps.iter().map(|s| s.transfer_ps).sum(),
                        arbitration_ps: adapted.report.steps.iter().map(|s| s.arbitration_ps).sum(),
                    },
                    rows,
                }
            }
            Binding::Scenario { name, bytes } => {
                let adapted = match run_scenario_once(&exp, name, *bytes, controller) {
                    Ok(r) => r,
                    Err(status) => return status,
                };
                let completion = adapted.iter().map(|t| t.finish_ps).max().unwrap_or(0);
                let speedup = if exp.controller == "static" {
                    1.0
                } else {
                    match run_scenario_once(&exp, name, *bytes, &Static) {
                        Ok(s) => {
                            let base = s.iter().map(|t| t.finish_ps).max().unwrap_or(0);
                            base as f64 / completion.max(1) as f64
                        }
                        Err(status) => return status,
                    }
                };
                let rows: Vec<ApsRunRow> = adapted
                    .iter()
                    .enumerate()
                    .map(|(i, t)| ApsRunRow {
                        index: i as u64,
                        total_ps: t.finish_ps,
                        reconfig_ps: t.report.steps.iter().map(|s| s.reconfig_ps).sum(),
                        transfer_ps: t.report.steps.iter().map(|s| s.transfer_ps).sum(),
                        arbitration_ps: t.arbitration_ps(),
                    })
                    .collect();
                FfiRun {
                    summary: ApsSimSummary {
                        struct_size: std::mem::size_of::<ApsSimSummary>(),
                        completion_ps: completion,
                        completion_s: picos_to_secs(completion),
                        speedup_vs_static: speedup,
                        rows: rows.len() as u64,
                        reconfig_events: adapted
                            .iter()
                            .map(|t| t.report.reconfig_events() as u64)
                            .sum(),
                        reconfig_ps: rows.iter().map(|r| r.reconfig_ps).sum(),
                        transfer_ps: rows.iter().map(|r| r.transfer_ps).sum(),
                        arbitration_ps: rows.iter().map(|r| r.arbitration_ps).sum(),
                    },
                    rows,
                }
            }
            Binding::Service { .. } => {
                return fail(
                    ApsStatus::WorkloadUnbound,
                    "service experiments run via aps_experiment_run_service",
                )
            }
            Binding::None => {
                return fail(
                    ApsStatus::WorkloadUnbound,
                    "bind a collective or scenario before simulating",
                )
            }
        };
        match lock(&RUNS).insert(run) {
            Ok(handle) => {
                unsafe { *out_run = handle };
                ApsStatus::Ok
            }
            Err(e) => fail(e.into(), "run table exhausted"),
        }
    })
}

/// Sweeps the bound collective over an (α_r × message-bytes) grid under
/// the four shipped policies. `cells` must hold `n_delays × n_bytes`
/// entries (row-major, delays outermost); `written` receives the cell
/// count (also on `APS_STATUS_BUFFER_TOO_SMALL`, as the required size).
#[no_mangle]
pub extern "C" fn aps_experiment_sweep(
    experiment: u64,
    reconf_delays_s: *const f64,
    n_delays: usize,
    message_bytes: *const f64,
    n_bytes: usize,
    cell_size: usize,
    cells: *mut ApsSweepCell,
    capacity: usize,
    written: *mut usize,
) -> ApsStatus {
    guarded(|| {
        if written.is_null() {
            return fail(ApsStatus::NullArgument, "written is null");
        }
        if reconf_delays_s.is_null() || message_bytes.is_null() {
            return fail(ApsStatus::NullArgument, "grid axes are null");
        }
        if n_delays == 0 || n_bytes == 0 {
            return fail(ApsStatus::InvalidArgument, "grid axes are empty");
        }
        if cell_size != std::mem::size_of::<ApsSweepCell>() {
            return fail(
                ApsStatus::StructSizeMismatch,
                &format!(
                    "cell_size = {cell_size}, library expects {} — header/library mismatch",
                    std::mem::size_of::<ApsSweepCell>()
                ),
            );
        }
        let needed = n_delays * n_bytes;
        unsafe { *written = needed };
        if capacity < needed {
            return fail(
                ApsStatus::BufferTooSmall,
                &format!("sweep needs {needed} cells, caller provided {capacity}"),
            );
        }
        if cells.is_null() {
            return fail(ApsStatus::NullArgument, "cells is null");
        }
        let exp = match snapshot(experiment) {
            Ok(e) => e,
            Err(status) => return status,
        };
        let Binding::Collective { family, bytes: _ } = &exp.binding else {
            return fail(ApsStatus::WorkloadUnbound, "sweep needs a bound collective");
        };
        let controller = match exp.controller() {
            Ok(c) => c,
            Err(status) => return status,
        };
        let delays = unsafe { std::slice::from_raw_parts(reconf_delays_s, n_delays) };
        let sizes = unsafe { std::slice::from_raw_parts(message_bytes, n_bytes) };
        let grid = SweepGrid {
            reconf_delays_s: delays.to_vec(),
            message_bytes: sizes.to_vec(),
        };
        // The sweep builds the collective per message size itself.
        let family = family.clone();
        let ports = exp.ports;
        let single = match exp.experiment(ports, controller) {
            Ok(e) => e.collective_family(move |m| {
                collective_by_name(&family, ports, m).expect("family validated at bind")
            }),
            Err(status) => return status,
        };
        let result = match single.sweep(&grid) {
            Ok(r) => r,
            Err(e) => return fail(ApsStatus::Core, &format!("sweep failed: {e}")),
        };
        let out = unsafe { std::slice::from_raw_parts_mut(cells, needed) };
        for (r, row) in result.cells.iter().enumerate() {
            for (c, cell) in row.iter().enumerate() {
                out[r * n_bytes + c] = ApsSweepCell {
                    t_static_s: cell.t_static_s,
                    t_bvn_s: cell.t_bvn_s,
                    t_opt_s: cell.t_opt_s,
                    t_threshold_s: cell.t_threshold_s,
                };
            }
        }
        ApsStatus::Ok
    })
}

/// Runs the experiment's service classes as an open system on the
/// configured medium. The summary is frozen behind a handle; destroy it
/// with `aps_service_destroy`.
#[no_mangle]
pub extern "C" fn aps_experiment_run_service(experiment: u64, out_service: *mut u64) -> ApsStatus {
    guarded(|| {
        if out_service.is_null() {
            return fail(ApsStatus::NullArgument, "out service handle is null");
        }
        let exp = match snapshot(experiment) {
            Ok(e) => e,
            Err(status) => return status,
        };
        let Binding::Service { classes } = &exp.binding else {
            return fail(
                ApsStatus::WorkloadUnbound,
                "add service classes before running the service",
            );
        };
        if classes.is_empty() {
            return fail(ApsStatus::WorkloadUnbound, "service has no classes");
        }
        let controller = match exp.controller() {
            Ok(c) => c,
            Err(status) => return status,
        };
        let mut tenant_classes = Vec::with_capacity(classes.len());
        for spec in classes {
            let collective =
                match collective_by_name(&spec.workload, spec.ports, spec.message_bytes) {
                    Some(Ok(c)) => c,
                    Some(Err(e)) => return fail(ApsStatus::Collective, &format!("{e}")),
                    None => return fail(ApsStatus::UnknownWorkload, "collective family vanished"),
                };
            let base = match Matching::shift(spec.ports, 1) {
                Ok(m) => m,
                Err(e) => return fail(ApsStatus::InvalidArgument, &format!("bad class base: {e}")),
            };
            let arrivals = match PoissonArrivals::new(spec.arrival_rate_hz, spec.jobs, spec.seed) {
                Ok(a) => a,
                Err(e) => return fail(ApsStatus::InvalidArgument, &format!("bad arrivals: {e}")),
            };
            let schedule = collective.schedule;
            let choice = if spec.matched {
                ConfigChoice::Matched
            } else {
                ConfigChoice::Base
            };
            tenant_classes.push(aps_faas::TenantClass::new(
                spec.name.clone(),
                spec.ports,
                base,
                ServiceSwitching::Uniform(choice),
                Box::new(arrivals),
                Box::new(move |_id: u64| -> Box<dyn Workload> {
                    Box::new(ScheduleStream::new(schedule.clone()))
                }),
            ));
        }
        let mut service = match exp.experiment(exp.ports, controller) {
            Ok(e) => e.service(tenant_classes).admission(exp.admission),
            Err(status) => return status,
        };
        if let Some(jobs) = exp.max_jobs {
            service = service.max_jobs(jobs);
        }
        let mut fabric = match exp.fabric(exp.ports) {
            Ok(f) => f,
            Err(e) => return fail(ApsStatus::Fabric, &format!("cannot build fabric: {e}")),
        };
        let report = match service.run_on(fabric.as_mut()) {
            Ok(r) => r,
            Err(e) => return fail(ApsStatus::Service, &format!("service failed: {e}")),
        };
        match lock(&SERVICES).insert(report.summary) {
            Ok(handle) => {
                unsafe { *out_service = handle };
                ApsStatus::Ok
            }
            Err(e) => fail(e.into(), "service table exhausted"),
        }
    })
}

// ---------------------------------------------------------------------------
// Run reads
// ---------------------------------------------------------------------------

/// Reads a run's summary.
#[no_mangle]
pub extern "C" fn aps_simrun_summary(run: u64, out: *mut ApsSimSummary) -> ApsStatus {
    guarded(|| {
        let size = if out.is_null() {
            0
        } else {
            unsafe { (*out).struct_size }
        };
        if let Err(status) = unsafe { check_out_struct(out, size, "sim summary") } {
            return status;
        }
        let table = lock(&RUNS);
        match table.get(run) {
            Ok(r) => {
                unsafe { *out = r.summary };
                ApsStatus::Ok
            }
            Err(e) => fail(e.into(), "run handle is stale"),
        }
    })
}

/// Copies a run's detail rows into a caller-owned buffer of `capacity`
/// elements of `row_size` bytes each. `written` receives the row count
/// (also on `APS_STATUS_BUFFER_TOO_SMALL`, as the required size).
#[no_mangle]
pub extern "C" fn aps_simrun_rows(
    run: u64,
    row_size: usize,
    rows: *mut ApsRunRow,
    capacity: usize,
    written: *mut usize,
) -> ApsStatus {
    guarded(|| {
        if written.is_null() {
            return fail(ApsStatus::NullArgument, "written is null");
        }
        if row_size != std::mem::size_of::<ApsRunRow>() {
            return fail(
                ApsStatus::StructSizeMismatch,
                &format!(
                    "row_size = {row_size}, library expects {} — header/library mismatch",
                    std::mem::size_of::<ApsRunRow>()
                ),
            );
        }
        let table = lock(&RUNS);
        let r = match table.get(run) {
            Ok(r) => r,
            Err(e) => return fail(e.into(), "run handle is stale"),
        };
        unsafe { *written = r.rows.len() };
        if capacity < r.rows.len() {
            return fail(
                ApsStatus::BufferTooSmall,
                &format!("run has {} rows, caller provided {capacity}", r.rows.len()),
            );
        }
        if rows.is_null() {
            return fail(ApsStatus::NullArgument, "rows is null");
        }
        let out = unsafe { std::slice::from_raw_parts_mut(rows, r.rows.len()) };
        out.copy_from_slice(&r.rows);
        ApsStatus::Ok
    })
}

/// Destroys a run. Double-destroy returns `APS_STATUS_STALE_HANDLE`.
#[no_mangle]
pub extern "C" fn aps_simrun_destroy(run: u64) -> ApsStatus {
    guarded(|| match lock(&RUNS).remove(run) {
        Ok(_) => ApsStatus::Ok,
        Err(e) => fail(e.into(), "run handle is stale"),
    })
}

// ---------------------------------------------------------------------------
// Service reads
// ---------------------------------------------------------------------------

/// Runs `f` on a live service summary.
fn with_service<F: FnOnce(&ServiceSummary) -> ApsStatus>(handle: u64, f: F) -> ApsStatus {
    let table = lock(&SERVICES);
    match table.get(handle) {
        Ok(s) => f(s),
        Err(e) => fail(e.into(), "service handle is stale"),
    }
}

/// Reads a service run's roll-up statistics.
#[no_mangle]
pub extern "C" fn aps_service_stats(service: u64, out: *mut ApsServiceStats) -> ApsStatus {
    guarded(|| {
        let size = if out.is_null() {
            0
        } else {
            unsafe { (*out).struct_size }
        };
        if let Err(status) = unsafe { check_out_struct(out, size, "service stats") } {
            return status;
        }
        with_service(service, |s| {
            unsafe {
                *out = ApsServiceStats {
                    struct_size: std::mem::size_of::<ApsServiceStats>(),
                    makespan_ps: s.makespan_ps,
                    makespan_s: s.makespan_s(),
                    offered: s.offered(),
                    completed: s.completed(),
                    steps: s.steps.steps as u64,
                    reconfig_events: s.steps.reconfig_events as u64,
                    classes: s.tenants.len() as u64,
                };
            }
            ApsStatus::Ok
        })
    })
}

/// Reads one class's SLO accounting (`index` below the stats' `classes`).
#[no_mangle]
pub extern "C" fn aps_service_class_slo(
    service: u64,
    index: usize,
    out: *mut ApsClassSlo,
) -> ApsStatus {
    guarded(|| {
        let size = if out.is_null() {
            0
        } else {
            unsafe { (*out).struct_size }
        };
        if let Err(status) = unsafe { check_out_struct(out, size, "class slo") } {
            return status;
        }
        with_service(service, |s| {
            let Some(t) = s.tenants.get(index) else {
                return fail(
                    ApsStatus::InvalidArgument,
                    &format!("class index {index} out of range ({})", s.tenants.len()),
                );
            };
            unsafe {
                *out = ApsClassSlo {
                    struct_size: std::mem::size_of::<ApsClassSlo>(),
                    offered: t.offered,
                    admitted: t.admitted,
                    queued: t.queued,
                    backpressured: t.backpressured,
                    rejected_too_large: t.rejected_too_large,
                    rejected_ports_busy: t.rejected_ports_busy,
                    rejected_queue_full: t.rejected_queue_full,
                    completed: t.completed,
                    failed: t.failed,
                    completion_p50_ps: t.completion.p50_ps().unwrap_or(0),
                    completion_p99_ps: t.completion.p99_ps().unwrap_or(0),
                    completion_max_ps: t.completion.max_ps(),
                    wait_p50_ps: t.wait.p50_ps().unwrap_or(0),
                    wait_p99_ps: t.wait.p99_ps().unwrap_or(0),
                    completion_mean_ps: t.completion.mean_ps(),
                    goodput: t.goodput(),
                };
            }
            ApsStatus::Ok
        })
    })
}

/// Copies one class's name (NUL-terminated) into a caller-owned buffer
/// of `capacity` bytes. `written` receives the byte count including the
/// NUL (also on `APS_STATUS_BUFFER_TOO_SMALL`, as the required size).
#[no_mangle]
pub extern "C" fn aps_service_class_name(
    service: u64,
    index: usize,
    buffer: *mut c_char,
    capacity: usize,
    written: *mut usize,
) -> ApsStatus {
    guarded(|| {
        if written.is_null() {
            return fail(ApsStatus::NullArgument, "written is null");
        }
        with_service(service, |s| {
            let Some(name) = s.class_names.get(index) else {
                return fail(
                    ApsStatus::InvalidArgument,
                    &format!("class index {index} out of range ({})", s.class_names.len()),
                );
            };
            let needed = name.len() + 1;
            unsafe { *written = needed };
            if capacity < needed {
                return fail(
                    ApsStatus::BufferTooSmall,
                    &format!("class name needs {needed} bytes, caller provided {capacity}"),
                );
            }
            if buffer.is_null() {
                return fail(ApsStatus::NullArgument, "buffer is null");
            }
            unsafe {
                std::ptr::copy_nonoverlapping(name.as_ptr(), buffer.cast::<u8>(), name.len());
                *buffer.add(name.len()) = 0;
            }
            ApsStatus::Ok
        })
    })
}

/// Destroys a service summary. Double-destroy returns
/// `APS_STATUS_STALE_HANDLE`.
#[no_mangle]
pub extern "C" fn aps_service_destroy(service: u64) -> ApsStatus {
    guarded(|| match lock(&SERVICES).remove(service) {
        Ok(_) => ApsStatus::Ok,
        Err(e) => fail(e.into(), "service handle is stale"),
    })
}
