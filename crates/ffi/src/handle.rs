//! Slot + generation handle table.
//!
//! Foreign callers hold opaque 64-bit handles, never pointers. A handle
//! packs a slot index (high 32 bits) and a generation counter (low
//! 32 bits); destroying a value bumps its slot's generation, so every
//! outstanding copy of the old handle — including a second destroy of
//! the same handle — resolves to a typed [`HandleError`] instead of
//! undefined behavior. Slots are recycled through a free list, and a
//! configurable capacity turns exhaustion into a clean error long
//! before memory does.
//!
//! The table is plain safe Rust with no FFI types, so the property
//! tests (`tests/handle_table.rs`) drive it directly.

/// Why a handle failed to resolve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandleError {
    /// The handle never came from this table, or its slot has since
    /// been destroyed (stale generation, double-destroy, the zero
    /// handle).
    Stale,
    /// The table is at capacity; no slot is free.
    Exhausted,
}

/// One slot: the live generation and the stored value (`None` after
/// destroy, while the slot waits on the free list).
#[derive(Debug)]
struct Slot<T> {
    generation: u32,
    value: Option<T>,
}

/// A typed handle table; see the [module docs](self) for the scheme.
#[derive(Debug)]
pub struct HandleTable<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    capacity: usize,
}

/// Generations start at 1 so the all-zero handle (a common foreign
/// "null") is stale by construction.
const FIRST_GENERATION: u32 = 1;

impl<T> HandleTable<T> {
    /// An empty table holding at most `capacity` live values.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            slots: Vec::new(),
            free: Vec::new(),
            capacity,
        }
    }

    /// Number of live values.
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Whether no values are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stores `value`, returning its handle.
    ///
    /// # Errors
    ///
    /// [`HandleError::Exhausted`] at capacity.
    pub fn insert(&mut self, value: T) -> Result<u64, HandleError> {
        if let Some(slot) = self.free.pop() {
            let s = &mut self.slots[slot as usize];
            debug_assert!(s.value.is_none());
            s.value = Some(value);
            return Ok(pack(slot, s.generation));
        }
        if self.slots.len() >= self.capacity {
            return Err(HandleError::Exhausted);
        }
        let slot = self.slots.len() as u32;
        self.slots.push(Slot {
            generation: FIRST_GENERATION,
            value: Some(value),
        });
        Ok(pack(slot, FIRST_GENERATION))
    }

    /// Resolves a handle to its value.
    ///
    /// # Errors
    ///
    /// [`HandleError::Stale`] for destroyed, foreign or zero handles.
    pub fn get(&self, handle: u64) -> Result<&T, HandleError> {
        let (slot, generation) = unpack(handle);
        self.slots
            .get(slot as usize)
            .filter(|s| s.generation == generation)
            .and_then(|s| s.value.as_ref())
            .ok_or(HandleError::Stale)
    }

    /// Resolves a handle to its value, mutably.
    ///
    /// # Errors
    ///
    /// [`HandleError::Stale`] for destroyed, foreign or zero handles.
    pub fn get_mut(&mut self, handle: u64) -> Result<&mut T, HandleError> {
        let (slot, generation) = unpack(handle);
        self.slots
            .get_mut(slot as usize)
            .filter(|s| s.generation == generation)
            .and_then(|s| s.value.as_mut())
            .ok_or(HandleError::Stale)
    }

    /// Destroys a handle's value and retires the handle: the slot's
    /// generation bumps, so this and every other copy of the handle is
    /// stale from here on, and the slot rejoins the free list.
    ///
    /// # Errors
    ///
    /// [`HandleError::Stale`] when the handle is already dead — a
    /// double-destroy reports cleanly instead of freeing twice.
    pub fn remove(&mut self, handle: u64) -> Result<T, HandleError> {
        let (slot, generation) = unpack(handle);
        let s = self
            .slots
            .get_mut(slot as usize)
            .filter(|s| s.generation == generation)
            .ok_or(HandleError::Stale)?;
        let value = s.value.take().ok_or(HandleError::Stale)?;
        // Wrapping keeps the slot usable forever; a handle surviving
        // 2^32 destroys of its slot is out of scope for this ABI.
        s.generation = s.generation.wrapping_add(1).max(FIRST_GENERATION);
        self.free.push(slot);
        Ok(value)
    }
}

/// Packs `(slot, generation)` into the public 64-bit handle.
fn pack(slot: u32, generation: u32) -> u64 {
    (u64::from(slot) << 32) | u64::from(generation)
}

/// Splits a public handle back into `(slot, generation)`.
fn unpack(handle: u64) -> (u32, u32) {
    ((handle >> 32) as u32, handle as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t = HandleTable::with_capacity(4);
        let h = t.insert("a").unwrap();
        assert_eq!(t.get(h), Ok(&"a"));
        assert_eq!(t.remove(h), Ok("a"));
        assert_eq!(t.get(h), Err(HandleError::Stale));
        assert_eq!(t.remove(h), Err(HandleError::Stale));
    }

    #[test]
    fn slot_reuse_bumps_generation() {
        let mut t = HandleTable::with_capacity(1);
        let a = t.insert(1).unwrap();
        t.remove(a).unwrap();
        let b = t.insert(2).unwrap();
        assert_ne!(a, b);
        assert_eq!(t.get(a), Err(HandleError::Stale));
        assert_eq!(t.get(b), Ok(&2));
    }

    #[test]
    fn exhaustion_is_clean() {
        let mut t = HandleTable::with_capacity(2);
        let a = t.insert(1).unwrap();
        t.insert(2).unwrap();
        assert_eq!(t.insert(3), Err(HandleError::Exhausted));
        t.remove(a).unwrap();
        assert!(t.insert(3).is_ok());
    }

    #[test]
    fn zero_handle_is_stale() {
        let t = HandleTable::<u8>::with_capacity(1);
        assert_eq!(t.get(0), Err(HandleError::Stale));
    }
}
