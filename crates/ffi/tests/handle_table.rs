//! Property tests for the slot+generation handle table: stale handles
//! and double-destroys are typed errors, never aliasing; exhaustion is
//! a clean error; slot reuse always changes the public handle.

use aps_ffi::handle::{HandleError, HandleTable};
use proptest::prelude::*;

/// A driver op, drawn against a small value space so collisions and
/// reuse are frequent.
#[derive(Debug, Clone)]
enum Op {
    Insert(u32),
    /// Remove the i-th live handle (mod live count).
    Remove(usize),
    /// Re-remove a handle that was already destroyed.
    RemoveDead(usize),
    /// Get via a handle that was already destroyed.
    GetDead(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0..4u32, 0..64usize, any::<u64>()).prop_map(|(kind, index, value)| match kind {
        0 => Op::Insert(value as u32),
        1 => Op::Remove(index),
        2 => Op::RemoveDead(index),
        _ => Op::GetDead(index),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random interleavings of insert/remove/double-destroy/stale-get
    /// against a shadow model: live handles always resolve to their
    /// value, dead handles always resolve to `Stale`, and the table
    /// never exceeds its capacity.
    #[test]
    fn table_matches_shadow_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        const CAPACITY: usize = 8;
        let mut table = HandleTable::with_capacity(CAPACITY);
        let mut live: Vec<(u64, u32)> = Vec::new();
        let mut dead: Vec<u64> = Vec::new();

        for op in ops {
            match op {
                Op::Insert(v) => match table.insert(v) {
                    Ok(h) => {
                        prop_assert!(live.len() < CAPACITY);
                        prop_assert!(!dead.contains(&h), "reused slot kept its old handle");
                        live.push((h, v));
                    }
                    Err(e) => {
                        prop_assert_eq!(e, HandleError::Exhausted);
                        prop_assert_eq!(live.len(), CAPACITY);
                    }
                },
                Op::Remove(i) if !live.is_empty() => {
                    let (h, v) = live.remove(i % live.len());
                    prop_assert_eq!(table.remove(h), Ok(v));
                    dead.push(h);
                }
                Op::RemoveDead(i) if !dead.is_empty() => {
                    let h = dead[i % dead.len()];
                    prop_assert_eq!(table.remove(h), Err(HandleError::Stale));
                }
                Op::GetDead(i) if !dead.is_empty() => {
                    let h = dead[i % dead.len()];
                    prop_assert_eq!(table.get(h), Err(HandleError::Stale));
                }
                // Nothing to act on yet; skip.
                Op::Remove(_) | Op::RemoveDead(_) | Op::GetDead(_) => {}
            }
            prop_assert_eq!(table.len(), live.len());
            for (h, v) in &live {
                prop_assert_eq!(table.get(*h), Ok(v));
            }
        }
    }

    /// Destroy-then-reinsert on one slot: every reincarnation gets a
    /// fresh public handle, and all prior handles for the slot are
    /// stale forever after.
    #[test]
    fn slot_reuse_always_bumps_generation(rounds in 1..100u32) {
        let mut table = HandleTable::with_capacity(1);
        let mut retired = Vec::new();
        for r in 0..rounds {
            let h = table.insert(r).unwrap();
            prop_assert!(!retired.contains(&h));
            prop_assert_eq!(table.get(h), Ok(&r));
            prop_assert_eq!(table.remove(h), Ok(r));
            prop_assert_eq!(table.remove(h), Err(HandleError::Stale));
            retired.push(h);
            for old in &retired {
                prop_assert_eq!(table.get(*old), Err(HandleError::Stale));
            }
        }
    }

    /// Handles never issued by the table (arbitrary bit patterns) are
    /// stale, not UB — including the all-zero handle.
    #[test]
    fn foreign_handles_are_stale(h in any::<u64>(), fill in 0..4usize) {
        let mut table = HandleTable::with_capacity(4);
        let issued: Vec<u64> = (0..fill).map(|v| table.insert(v).unwrap()).collect();
        if !issued.contains(&h) {
            prop_assert_eq!(table.get(h), Err(HandleError::Stale));
        }
        prop_assert_eq!(table.get(0), Err(HandleError::Stale));
    }

    /// Exhaustion reports cleanly and the table recovers as soon as one
    /// slot frees up.
    #[test]
    fn exhaustion_is_clean_and_recoverable(capacity in 1..16usize) {
        let mut table = HandleTable::with_capacity(capacity);
        let handles: Vec<u64> = (0..capacity).map(|v| table.insert(v).unwrap()).collect();
        prop_assert_eq!(table.insert(99), Err(HandleError::Exhausted));
        // Existing handles are untouched by the failed insert.
        for (v, h) in handles.iter().enumerate() {
            prop_assert_eq!(table.get(*h), Ok(&v));
        }
        table.remove(handles[0]).unwrap();
        prop_assert!(table.insert(99).is_ok());
    }
}
