//! In-process ABI round-trips: every summary the C surface returns must
//! match the native Rust API bit-for-bit, and every failure path must
//! come back as a typed status with a readable message.

use std::ffi::{CStr, CString};

use adaptive_photonics::experiment::{collective_by_name, Experiment};
use aps_core::controller::by_name as controller_by_name;
use aps_core::sweep::SweepGrid;
use aps_cost::units::MIB;
use aps_cost::{CostParams, ReconfigModel};
use aps_faas::{AdmissionPolicy, PoissonArrivals, TenantClass};
use aps_ffi::api::*;
use aps_ffi::error::aps_last_error_message;
use aps_ffi::status::ApsStatus;
use aps_matrix::Matching;
use aps_sim::scenarios::hetero::{self, FabricKind, FailureStorm};
use aps_sim::ServiceSwitching;
use aps_topology::builders::ring_unidirectional;

const ALPHA_S: f64 = 100e-9;
const BANDWIDTH_GBPS: f64 = 800.0;
const DELTA_S: f64 = 100e-9;
const ALPHA_R_S: f64 = 10e-6;

fn domain_config(
    ports: u32,
    controller: &CStr,
    fabric: i32,
    storm_seed: Option<u64>,
) -> ApsDomainConfig {
    ApsDomainConfig {
        struct_size: std::mem::size_of::<ApsDomainConfig>(),
        ports,
        alpha_s: ALPHA_S,
        bandwidth_gbps: BANDWIDTH_GBPS,
        delta_s: DELTA_S,
        alpha_r_s: ALPHA_R_S,
        controller: controller.as_ptr(),
        fabric,
        storm: storm_seed.is_some() as i32,
        storm_seed: storm_seed.unwrap_or(0),
    }
}

fn new_experiment(cfg: &ApsDomainConfig) -> u64 {
    let mut handle = 0u64;
    assert_eq!(aps_experiment_new(cfg, &mut handle), ApsStatus::Ok);
    assert_ne!(handle, 0);
    handle
}

fn last_error() -> String {
    unsafe { CStr::from_ptr(aps_last_error_message()) }
        .to_string_lossy()
        .into_owned()
}

/// The native oracle's experiment builder, mirroring the FFI's run
/// semantics exactly.
fn native_experiment(
    ports: usize,
    controller: &str,
) -> Experiment<adaptive_photonics::experiment::Unbound> {
    let params = CostParams::new(ALPHA_S, BANDWIDTH_GBPS, DELTA_S).unwrap();
    let reconfig = ReconfigModel::constant(ALPHA_R_S).unwrap();
    Experiment::domain(ring_unidirectional(ports).unwrap())
        .params(params)
        .reconfig(reconfig)
        .controller(controller_by_name(controller).unwrap())
}

fn native_fabric(
    kind: FabricKind,
    n: usize,
    storm: Option<FailureStorm>,
) -> Box<dyn aps_fabric::Fabric> {
    let reconfig = ReconfigModel::constant(ALPHA_R_S).unwrap();
    hetero::build_fabric_stormy(kind, Matching::shift(n, 1).unwrap(), reconfig, storm).unwrap()
}

#[test]
fn abi_version_is_packed_semver() {
    let packed = aps_abi_version();
    let (mut major, mut minor, mut patch) = (0u32, 0u32, 0u32);
    assert_eq!(
        aps_abi_version_triple(&mut major, &mut minor, &mut patch),
        ApsStatus::Ok
    );
    assert_eq!(packed, (major << 16) | (minor << 8) | patch);
    assert!(major >= 1);
}

#[test]
fn status_names_are_stable() {
    for s in ApsStatus::all() {
        let name = unsafe { CStr::from_ptr(aps_status_name(*s as i32)) };
        assert_eq!(name.to_str().unwrap(), s.name());
    }
    let unknown = unsafe { CStr::from_ptr(aps_status_name(-1)) };
    assert_eq!(unknown.to_str().unwrap(), "APS_STATUS_UNKNOWN");
}

#[test]
fn collective_plan_and_simulate_match_native_bit_for_bit() {
    let controller = CString::new("opt").unwrap();
    let family = CString::new("hd-allreduce").unwrap();
    let cfg = domain_config(16, &controller, ApsFabricKind::Optical as i32, None);
    let exp = new_experiment(&cfg);
    assert_eq!(
        aps_experiment_bind_collective(exp, family.as_ptr(), MIB),
        ApsStatus::Ok
    );

    // Plan vs native plan.
    let mut plan = ApsPlanSummary {
        struct_size: std::mem::size_of::<ApsPlanSummary>(),
        ..Default::default()
    };
    assert_eq!(aps_experiment_plan(exp, &mut plan), ApsStatus::Ok);
    let collective = collective_by_name("hd-allreduce", 16, MIB)
        .unwrap()
        .unwrap();
    let native_plan = native_experiment(16, "opt")
        .collective(&collective)
        .plan()
        .unwrap();
    assert_eq!(plan.steps, native_plan.switches.len() as u64);
    assert_eq!(
        plan.reconfig_events,
        native_plan.report.reconfig_events as u64
    );
    assert_eq!(
        plan.total_s.to_bits(),
        native_plan.report.total_s().to_bits()
    );
    assert_eq!(
        plan.reconfig_s.to_bits(),
        native_plan.report.reconfig_s.to_bits()
    );
    assert_eq!(
        plan.transmission_s.to_bits(),
        native_plan.report.transmission_s.to_bits()
    );

    // Simulate vs native simulate_on over the identical fabric.
    let mut run = 0u64;
    assert_eq!(aps_experiment_simulate(exp, &mut run), ApsStatus::Ok);
    let mut summary = ApsSimSummary {
        struct_size: std::mem::size_of::<ApsSimSummary>(),
        ..Default::default()
    };
    assert_eq!(aps_simrun_summary(run, &mut summary), ApsStatus::Ok);

    let mut fabric = native_fabric(FabricKind::Optical, 16, None);
    let native = native_experiment(16, "opt")
        .collective(&collective)
        .simulate_on(fabric.as_mut())
        .unwrap();
    assert_eq!(summary.completion_ps, native.report.total_ps);
    assert_eq!(summary.rows, native.report.steps.len() as u64);
    assert_eq!(
        summary.reconfig_events,
        native.report.reconfig_events() as u64
    );

    let mut baseline_fabric = native_fabric(FabricKind::Optical, 16, None);
    let baseline = native_experiment(16, "static")
        .collective(&collective)
        .simulate_on(baseline_fabric.as_mut())
        .unwrap();
    let speedup = baseline.report.total_ps as f64 / native.report.total_ps.max(1) as f64;
    assert_eq!(summary.speedup_vs_static.to_bits(), speedup.to_bits());
    assert!(summary.speedup_vs_static > 1.0);

    // Rows match the per-step report.
    let mut rows = vec![ApsRunRow::default(); summary.rows as usize];
    let mut written = 0usize;
    assert_eq!(
        aps_simrun_rows(
            run,
            std::mem::size_of::<ApsRunRow>(),
            rows.as_mut_ptr(),
            rows.len(),
            &mut written
        ),
        ApsStatus::Ok
    );
    assert_eq!(written, native.report.steps.len());
    for (row, step) in rows.iter().zip(&native.report.steps) {
        assert_eq!(row.total_ps, step.total_ps());
        assert_eq!(row.reconfig_ps, step.reconfig_ps);
        assert_eq!(row.transfer_ps, step.transfer_ps);
    }

    assert_eq!(aps_simrun_destroy(run), ApsStatus::Ok);
    assert_eq!(aps_experiment_destroy(exp), ApsStatus::Ok);
}

#[test]
fn hetero_scenario_with_storm_matches_native_and_replays() {
    let controller = CString::new("greedy").unwrap();
    let name = CString::new("hetero-hybrid").unwrap();
    let cfg = domain_config(32, &controller, ApsFabricKind::Hybrid as i32, Some(42));
    let exp = new_experiment(&cfg);
    assert_eq!(
        aps_experiment_bind_scenario(exp, name.as_ptr(), MIB),
        ApsStatus::Ok
    );

    let read = |exp: u64| -> (ApsSimSummary, Vec<ApsRunRow>) {
        let mut run = 0u64;
        assert_eq!(aps_experiment_simulate(exp, &mut run), ApsStatus::Ok);
        let mut summary = ApsSimSummary {
            struct_size: std::mem::size_of::<ApsSimSummary>(),
            ..Default::default()
        };
        assert_eq!(aps_simrun_summary(run, &mut summary), ApsStatus::Ok);
        let mut rows = vec![ApsRunRow::default(); summary.rows as usize];
        let mut written = 0usize;
        assert_eq!(
            aps_simrun_rows(
                run,
                std::mem::size_of::<ApsRunRow>(),
                rows.as_mut_ptr(),
                rows.len(),
                &mut written
            ),
            ApsStatus::Ok
        );
        assert_eq!(aps_simrun_destroy(run), ApsStatus::Ok);
        (summary, rows)
    };

    let (summary, rows) = read(exp);

    // Native oracle: same scenario, same stormy hybrid fabric.
    let scenario = hetero::by_name("hetero-hybrid", MIB).unwrap();
    let mut shared = native_experiment(scenario.n, "greedy").scenario(scenario);
    shared.plan().unwrap();
    let mut fabric = native_fabric(FabricKind::Hybrid, 32, Some(FailureStorm::new(42)));
    let reports: Vec<_> = shared
        .simulate_on(fabric.as_mut())
        .unwrap()
        .into_iter()
        .map(|r| r.unwrap())
        .collect();
    let completion = reports.iter().map(|t| t.finish_ps).max().unwrap();
    assert_eq!(summary.completion_ps, completion);
    assert_eq!(summary.rows, reports.len() as u64);
    for (row, tenant) in rows.iter().zip(&reports) {
        assert_eq!(row.total_ps, tenant.finish_ps);
        assert_eq!(row.arbitration_ps, tenant.arbitration_ps());
    }

    // Storms are seeded: a second run through the ABI replays
    // bit-identically.
    let (again, rows_again) = read(exp);
    assert_eq!(summary, again);
    assert_eq!(rows, rows_again);

    assert_eq!(aps_experiment_destroy(exp), ApsStatus::Ok);
}

#[test]
fn sweep_matches_native_grid() {
    let controller = CString::new("opt").unwrap();
    let family = CString::new("alltoall").unwrap();
    let cfg = domain_config(8, &controller, ApsFabricKind::Optical as i32, None);
    let exp = new_experiment(&cfg);
    assert_eq!(
        aps_experiment_bind_collective(exp, family.as_ptr(), MIB),
        ApsStatus::Ok
    );

    let delays = [1e-6, 10e-6];
    let sizes = [MIB, 4.0 * MIB];
    let mut cells = vec![ApsSweepCell::default(); 4];
    let mut written = 0usize;
    assert_eq!(
        aps_experiment_sweep(
            exp,
            delays.as_ptr(),
            delays.len(),
            sizes.as_ptr(),
            sizes.len(),
            std::mem::size_of::<ApsSweepCell>(),
            cells.as_mut_ptr(),
            cells.len(),
            &mut written
        ),
        ApsStatus::Ok
    );
    assert_eq!(written, 4);

    let native = native_experiment(8, "opt")
        .collective_family(|m| collective_by_name("alltoall", 8, m).unwrap())
        .sweep(&SweepGrid {
            reconf_delays_s: delays.to_vec(),
            message_bytes: sizes.to_vec(),
        })
        .unwrap();
    for (r, row) in native.cells.iter().enumerate() {
        for (c, cell) in row.iter().enumerate() {
            let got = &cells[r * sizes.len() + c];
            assert_eq!(got.t_static_s.to_bits(), cell.t_static_s.to_bits());
            assert_eq!(got.t_bvn_s.to_bits(), cell.t_bvn_s.to_bits());
            assert_eq!(got.t_opt_s.to_bits(), cell.t_opt_s.to_bits());
            assert_eq!(got.t_threshold_s.to_bits(), cell.t_threshold_s.to_bits());
        }
    }

    // Undersized buffer: typed error, needed count reported.
    let mut short = vec![ApsSweepCell::default(); 1];
    let mut needed = 0usize;
    assert_eq!(
        aps_experiment_sweep(
            exp,
            delays.as_ptr(),
            delays.len(),
            sizes.as_ptr(),
            sizes.len(),
            std::mem::size_of::<ApsSweepCell>(),
            short.as_mut_ptr(),
            short.len(),
            &mut needed
        ),
        ApsStatus::BufferTooSmall
    );
    assert_eq!(needed, 4);

    assert_eq!(aps_experiment_destroy(exp), ApsStatus::Ok);
}

#[test]
fn service_run_matches_native_slo_accounting() {
    let controller = CString::new("opt").unwrap();
    let cfg = domain_config(16, &controller, ApsFabricKind::Optical as i32, None);
    let exp = new_experiment(&cfg);

    let class_name = CString::new("burst").unwrap();
    let workload = CString::new("hd-allreduce").unwrap();
    let class = ApsServiceClass {
        struct_size: std::mem::size_of::<ApsServiceClass>(),
        name: class_name.as_ptr(),
        ports: 8,
        workload: workload.as_ptr(),
        message_bytes: MIB,
        arrival_rate_hz: 2000.0,
        jobs: 24,
        seed: 7,
        matched: 1,
    };
    assert_eq!(aps_experiment_add_service_class(exp, &class), ApsStatus::Ok);
    assert_eq!(aps_experiment_set_admission(exp, 1, 4), ApsStatus::Ok);

    let mut service = 0u64;
    assert_eq!(aps_experiment_run_service(exp, &mut service), ApsStatus::Ok);

    let mut stats = ApsServiceStats {
        struct_size: std::mem::size_of::<ApsServiceStats>(),
        ..Default::default()
    };
    assert_eq!(aps_service_stats(service, &mut stats), ApsStatus::Ok);
    assert_eq!(stats.classes, 1);
    assert_eq!(stats.offered, 24);

    // Native oracle: identical class, fabric and policy.
    let collective = collective_by_name("hd-allreduce", 8, MIB).unwrap().unwrap();
    let schedule = collective.schedule;
    let native_class = TenantClass::new(
        "burst",
        8,
        Matching::shift(8, 1).unwrap(),
        ServiceSwitching::Uniform(aps_core::ConfigChoice::Matched),
        Box::new(PoissonArrivals::new(2000.0, Some(24), 7).unwrap()),
        Box::new(move |_id: u64| -> Box<dyn aps_collectives::Workload> {
            Box::new(aps_collectives::ScheduleStream::new(schedule.clone()))
        }),
    );
    let mut fabric = native_fabric(FabricKind::Optical, 16, None);
    let native = native_experiment(16, "opt")
        .service(vec![native_class])
        .admission(AdmissionPolicy::Queue { capacity: 4 })
        .run_on(fabric.as_mut())
        .unwrap()
        .summary;
    assert_eq!(stats.makespan_ps, native.makespan_ps);
    assert_eq!(stats.completed, native.completed());
    assert_eq!(stats.steps, native.steps.steps as u64);

    let mut slo = ApsClassSlo {
        struct_size: std::mem::size_of::<ApsClassSlo>(),
        ..Default::default()
    };
    assert_eq!(aps_service_class_slo(service, 0, &mut slo), ApsStatus::Ok);
    let t = &native.tenants[0];
    assert_eq!(slo.offered, t.offered);
    assert_eq!(slo.admitted, t.admitted);
    assert_eq!(slo.queued, t.queued);
    assert_eq!(slo.completed, t.completed);
    assert_eq!(slo.completion_p50_ps, t.completion.p50_ps().unwrap_or(0));
    assert_eq!(slo.completion_p99_ps, t.completion.p99_ps().unwrap_or(0));
    assert_eq!(slo.wait_p50_ps, t.wait.p50_ps().unwrap_or(0));
    assert_eq!(slo.goodput.to_bits(), t.goodput().to_bits());
    assert!(slo.completed > 0);

    // Class name round-trips through the byte buffer, with the
    // undersized case reporting the needed length.
    let mut buf = [0i8; 32];
    let mut written = 0usize;
    assert_eq!(
        aps_service_class_name(service, 0, buf.as_mut_ptr().cast(), buf.len(), &mut written),
        ApsStatus::Ok
    );
    assert_eq!(written, "burst".len() + 1);
    let name = unsafe { CStr::from_ptr(buf.as_ptr().cast()) };
    assert_eq!(name.to_str().unwrap(), "burst");
    let mut tiny_written = 0usize;
    assert_eq!(
        aps_service_class_name(service, 0, buf.as_mut_ptr().cast(), 2, &mut tiny_written),
        ApsStatus::BufferTooSmall
    );
    assert_eq!(tiny_written, "burst".len() + 1);

    assert_eq!(aps_service_destroy(service), ApsStatus::Ok);
    assert_eq!(aps_service_destroy(service), ApsStatus::StaleHandle);
    assert_eq!(aps_experiment_destroy(exp), ApsStatus::Ok);
}

#[test]
fn every_failure_is_typed_and_explained() {
    // Stale / double-destroy handles.
    let controller = CString::new("opt").unwrap();
    let cfg = domain_config(8, &controller, ApsFabricKind::Optical as i32, None);
    let exp = new_experiment(&cfg);
    assert_eq!(aps_experiment_destroy(exp), ApsStatus::Ok);
    assert_eq!(aps_experiment_destroy(exp), ApsStatus::StaleHandle);
    assert!(last_error().contains("stale"));
    let mut run = 0u64;
    assert_eq!(
        aps_experiment_simulate(exp, &mut run),
        ApsStatus::StaleHandle
    );
    assert_eq!(aps_simrun_destroy(0), ApsStatus::StaleHandle);

    // Struct-size guard: a config "compiled against a different header".
    let mut bad = domain_config(8, &controller, ApsFabricKind::Optical as i32, None);
    bad.struct_size += 8;
    let mut out = 0u64;
    assert_eq!(
        aps_experiment_new(&bad, &mut out),
        ApsStatus::StructSizeMismatch
    );
    assert!(last_error().contains("struct_size"));

    // Unknown names map to their own statuses.
    let good = domain_config(8, &controller, ApsFabricKind::Optical as i32, None);
    let mut bogus = good;
    let phantom = CString::new("phantom").unwrap();
    bogus.controller = phantom.as_ptr();
    assert_eq!(
        aps_experiment_new(&bogus, &mut out),
        ApsStatus::UnknownController
    );

    let exp = new_experiment(&good);
    assert_eq!(
        aps_experiment_bind_collective(exp, phantom.as_ptr(), MIB),
        ApsStatus::UnknownWorkload
    );
    assert_eq!(
        aps_experiment_bind_scenario(exp, phantom.as_ptr(), MIB),
        ApsStatus::UnknownScenario
    );
    assert!(last_error().contains("phantom"));

    // Null arguments never dereference.
    assert_eq!(
        aps_experiment_bind_collective(exp, std::ptr::null(), MIB),
        ApsStatus::NullArgument
    );
    assert_eq!(
        aps_experiment_simulate(exp, std::ptr::null_mut()),
        ApsStatus::NullArgument
    );

    // Running with nothing bound is typed, not a crash.
    let mut handle = 0u64;
    assert_eq!(
        aps_experiment_simulate(exp, &mut handle),
        ApsStatus::WorkloadUnbound
    );
    assert_eq!(
        aps_experiment_run_service(exp, &mut handle),
        ApsStatus::WorkloadUnbound
    );

    // Bad enum values.
    assert_eq!(
        aps_experiment_set_admission(exp, 9, 0),
        ApsStatus::InvalidArgument
    );
    let mut bad_fabric = good;
    bad_fabric.fabric = 99;
    assert_eq!(
        aps_experiment_new(&bad_fabric, &mut out),
        ApsStatus::InvalidArgument
    );

    assert_eq!(aps_experiment_destroy(exp), ApsStatus::Ok);
}

#[test]
fn wavelength_bank_runs_through_the_abi() {
    let controller = CString::new("opt").unwrap();
    let name = CString::new("multi-wavelength").unwrap();
    let cfg = domain_config(24, &controller, ApsFabricKind::WavelengthBank as i32, None);
    let exp = new_experiment(&cfg);
    assert_eq!(
        aps_experiment_bind_scenario(exp, name.as_ptr(), MIB),
        ApsStatus::Ok
    );
    let mut run = 0u64;
    assert_eq!(aps_experiment_simulate(exp, &mut run), ApsStatus::Ok);
    let mut summary = ApsSimSummary {
        struct_size: std::mem::size_of::<ApsSimSummary>(),
        ..Default::default()
    };
    assert_eq!(aps_simrun_summary(run, &mut summary), ApsStatus::Ok);
    assert!(summary.completion_ps > 0);
    assert_eq!(summary.rows, 2);

    let scenario = hetero::by_name("multi-wavelength", MIB).unwrap();
    let mut shared = native_experiment(scenario.n, "opt").scenario(scenario);
    shared.plan().unwrap();
    let mut fabric = native_fabric(FabricKind::WavelengthBank, 24, None);
    let native: Vec<_> = shared
        .simulate_on(fabric.as_mut())
        .unwrap()
        .into_iter()
        .map(|r| r.unwrap())
        .collect();
    assert_eq!(
        summary.completion_ps,
        native.iter().map(|t| t.finish_ps).max().unwrap()
    );

    assert_eq!(aps_simrun_destroy(run), ApsStatus::Ok);
    assert_eq!(aps_experiment_destroy(exp), ApsStatus::Ok);
}
