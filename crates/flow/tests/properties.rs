//! Property-based tests for the concurrent-flow solvers: bound sandwiches,
//! monotonicity, and agreement between independent algorithms.

use aps_flow::dinic::pair_max_flow;
use aps_flow::forced::forced_path_throughput;
use aps_flow::gk::{matching_commodities, max_concurrent_flow};
use aps_flow::proxy::degree_proxy_throughput;
use aps_flow::ring;
use aps_matrix::Matching;
use aps_topology::{builders, Topology};
use proptest::prelude::*;

/// Strategy: a ring-spined random topology plus a random shift matching.
fn arb_instance() -> impl Strategy<Value = (Topology, Matching)> {
    (
        3usize..10,
        1usize..9,
        proptest::collection::vec((0usize..10, 0usize..10), 0..10),
    )
        .prop_map(|(n, k, chords)| {
            let mut t = Topology::new(n, "random");
            for i in 0..n {
                t.add_link(i, (i + 1) % n, 1.0).unwrap();
            }
            for (a, b) in chords {
                let (a, b) = (a % n, b % n);
                if a != b {
                    t.add_link(a, b, 0.7).unwrap();
                }
            }
            let m = Matching::shift(n, (k % (n - 1)) + 1).unwrap();
            (t, m)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bound_sandwich_holds((t, m) in arb_instance()) {
        // forced (a feasible routing) ≤ optimum ≤ GK upper bound, and the
        // degree proxy upper-bounds forced.
        let (forced, _) = forced_path_throughput(&t, &m).unwrap();
        let r = max_concurrent_flow(&t, &matching_commodities(&m), 0.1).unwrap();
        prop_assert!(r.upper_bound >= forced - 1e-9,
            "dual bound {} below feasible forced {}", r.upper_bound, forced);
        prop_assert!(r.lower_bound <= r.upper_bound + 1e-9);
        let (proxy, _) = degree_proxy_throughput(&t, &m).unwrap();
        prop_assert!(proxy >= forced - 1e-9);
        // GK's certified solution is within (1-3ε) of its own upper bound.
        prop_assert!(r.lower_bound >= (1.0 - 0.31) * forced - 1e-9);
    }

    #[test]
    fn theta_bounded_by_single_pair_flows((t, m) in arb_instance()) {
        let (forced, _) = forced_path_throughput(&t, &m).unwrap();
        for (s, d) in m.pairs() {
            prop_assert!(forced <= pair_max_flow(&t, s, d) + 1e-9);
        }
    }

    #[test]
    fn adding_capacity_never_hurts((t, m) in arb_instance(), extra in 0usize..10) {
        let (before, _) = forced_path_throughput(&t, &m).unwrap();
        let mut bigger = t.clone();
        let n = bigger.n();
        let (a, b) = (extra % n, (extra + 1 + extra % (n - 1)) % n);
        if a != b {
            bigger.add_link(a, b, 1.0).unwrap();
        }
        let (after, _) = forced_path_throughput(&bigger, &m).unwrap();
        // Forced SP routing with deterministic tie-breaks may reroute, but
        // capacity addition can't hurt the *optimal* flow; check via GK
        // upper bound instead for the strict claim, and allow the forced
        // value to move only modestly in either direction.
        let gk_before = max_concurrent_flow(&t, &matching_commodities(&m), 0.12).unwrap();
        let gk_after = max_concurrent_flow(&bigger, &matching_commodities(&m), 0.12).unwrap();
        prop_assert!(gk_after.upper_bound >= gk_before.lower_bound - 1e-9);
        prop_assert!(after > 0.0 && before > 0.0);
    }

    #[test]
    fn scaling_capacities_scales_theta((t, m) in arb_instance(), factor in 0.25f64..4.0) {
        let mut scaled = Topology::new(t.n(), "scaled");
        for l in t.links() {
            scaled.add_link(l.src, l.dst, l.capacity * factor).unwrap();
        }
        let (a, ha) = forced_path_throughput(&t, &m).unwrap();
        let (b, hb) = forced_path_throughput(&scaled, &m).unwrap();
        prop_assert!((b - a * factor).abs() < 1e-9 * (1.0 + b));
        prop_assert_eq!(ha, hb);
    }

    #[test]
    fn uni_ring_closed_form_matches_general_solver(n in 3usize..24, k in 1usize..23) {
        let k = (k % (n - 1)) + 1;
        let t = builders::ring_unidirectional(n).unwrap();
        let m = Matching::shift(n, k).unwrap();
        let (theta, ell) = forced_path_throughput(&t, &m).unwrap();
        let (fast, fell) = ring::uni_ring_matching_theta(n, &m, 1.0);
        prop_assert!((theta - fast).abs() < 1e-12);
        prop_assert_eq!(ell, fell);
        prop_assert!((theta - ring::uni_ring_shift_theta(n, k, 1.0)).abs() < 1e-12);
    }

    #[test]
    fn bi_ring_cut_bound_dominates_gk_lower(n in 4usize..12, k in 1usize..11) {
        let k = (k % (n - 1)) + 1;
        let t = builders::ring_bidirectional(n).unwrap();
        let m = Matching::shift(n, k).unwrap();
        let cut = ring::bi_ring_cut_upper_bound(n, &m, 0.5);
        let r = max_concurrent_flow(&t, &matching_commodities(&m), 0.1).unwrap();
        prop_assert!(cut >= r.lower_bound - 1e-9,
            "cut bound {} below achievable {}", cut, r.lower_bound);
    }
}
