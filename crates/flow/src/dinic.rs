//! Dinic's single-commodity maximum flow.
//!
//! Used as (a) a feasibility oracle — e.g. "can this circuit configuration
//! carry this matching at rate r?" via a super-source/super-sink reduction —
//! and (b) a test oracle for the concurrent-flow solvers on single-commodity
//! instances.

/// A directed edge for the flow network.
#[derive(Debug, Clone, Copy)]
struct Edge {
    to: usize,
    cap: f64,
    /// Index of the reverse edge in `graph[to]`.
    rev: usize,
}

/// Dinic max-flow solver over an explicit node set.
#[derive(Debug)]
pub struct Dinic {
    graph: Vec<Vec<Edge>>,
}

impl Dinic {
    /// Creates a flow network with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        Self {
            graph: vec![Vec::new(); n],
        }
    }

    /// Adds a directed edge `u → v` with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or the capacity is negative.
    pub fn add_edge(&mut self, u: usize, v: usize, cap: f64) {
        assert!(
            u < self.graph.len() && v < self.graph.len(),
            "endpoint out of range"
        );
        assert!(cap >= 0.0, "negative capacity");
        let rev_u = self.graph[v].len();
        let rev_v = self.graph[u].len();
        self.graph[u].push(Edge {
            to: v,
            cap,
            rev: rev_u,
        });
        self.graph[v].push(Edge {
            to: u,
            cap: 0.0,
            rev: rev_v,
        });
    }

    /// Computes the maximum `s → t` flow. `O(V²E)` worst case, far better on
    /// unit-ish networks.
    ///
    /// # Panics
    ///
    /// Panics if `s` or `t` is out of range.
    pub fn max_flow(&mut self, s: usize, t: usize) -> f64 {
        assert!(s < self.graph.len() && t < self.graph.len());
        if s == t {
            return 0.0;
        }
        const EPS: f64 = 1e-12;
        let mut total = 0.0;
        loop {
            // BFS level graph.
            let mut level = vec![usize::MAX; self.graph.len()];
            level[s] = 0;
            let mut q = std::collections::VecDeque::from([s]);
            while let Some(u) = q.pop_front() {
                for e in &self.graph[u] {
                    if e.cap > EPS && level[e.to] == usize::MAX {
                        level[e.to] = level[u] + 1;
                        q.push_back(e.to);
                    }
                }
            }
            if level[t] == usize::MAX {
                return total;
            }
            // DFS blocking flow with iteration pointers.
            let mut iter = vec![0usize; self.graph.len()];
            loop {
                let f = self.dfs(s, t, f64::INFINITY, &level, &mut iter);
                if f <= EPS {
                    break;
                }
                total += f;
            }
        }
    }

    fn dfs(&mut self, u: usize, t: usize, limit: f64, level: &[usize], iter: &mut [usize]) -> f64 {
        const EPS: f64 = 1e-12;
        if u == t {
            return limit;
        }
        while iter[u] < self.graph[u].len() {
            let (to, cap, rev) = {
                let e = &self.graph[u][iter[u]];
                (e.to, e.cap, e.rev)
            };
            if cap > EPS && level[to] == level[u] + 1 {
                let d = self.dfs(to, t, limit.min(cap), level, iter);
                if d > EPS {
                    self.graph[u][iter[u]].cap -= d;
                    self.graph[to][rev].cap += d;
                    return d;
                }
            }
            iter[u] += 1;
        }
        0.0
    }
}

/// Builds a Dinic network from a topology: node `i` of the topology maps to
/// flow node `i`; two extra nodes are appended for use as super-source
/// (`n`) and super-sink (`n + 1`) by callers.
pub fn from_topology(topo: &aps_topology::Topology) -> Dinic {
    let mut d = Dinic::new(topo.n() + 2);
    for l in topo.links() {
        d.add_edge(l.src, l.dst, l.capacity);
    }
    d
}

/// Maximum rate a *single* pair `(src, dst)` can sustain on `topo` when it
/// has the network to itself (splittable routing).
///
/// This is a per-commodity upper bound on the concurrent flow of any
/// matching containing the pair: `θ(G, M) ≤ pair_max_flow(G, s, d)` for all
/// `(s, d) ∈ M`. It is also the oracle used by tests of the multicommodity
/// solvers on single-commodity instances, where both must agree exactly.
pub fn pair_max_flow(topo: &aps_topology::Topology, src: usize, dst: usize) -> f64 {
    let mut d = from_topology(topo);
    d.max_flow(src, dst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aps_matrix::Matching;
    use aps_topology::builders;

    #[test]
    fn simple_series_parallel() {
        //     ┌─1(3)─┐
        // 0 ──┤      ├── 3 , plus 0→3 direct cap 1
        //     └─2(2)─┘
        let mut d = Dinic::new(4);
        d.add_edge(0, 1, 3.0);
        d.add_edge(1, 3, 3.0);
        d.add_edge(0, 2, 2.0);
        d.add_edge(2, 3, 2.0);
        d.add_edge(0, 3, 1.0);
        assert!((d.max_flow(0, 3) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn bottleneck_respected() {
        let mut d = Dinic::new(3);
        d.add_edge(0, 1, 10.0);
        d.add_edge(1, 2, 0.5);
        assert!((d.max_flow(0, 2) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn disconnected_zero() {
        let mut d = Dinic::new(4);
        d.add_edge(0, 1, 1.0);
        d.add_edge(2, 3, 1.0);
        assert_eq!(d.max_flow(0, 3), 0.0);
        assert_eq!(d.max_flow(0, 0), 0.0);
    }

    #[test]
    fn residual_allows_rerouting() {
        // Classic example where a greedy path must be undone via residuals.
        let mut d = Dinic::new(4);
        d.add_edge(0, 1, 1.0);
        d.add_edge(0, 2, 1.0);
        d.add_edge(1, 2, 1.0);
        d.add_edge(1, 3, 1.0);
        d.add_edge(2, 3, 1.0);
        assert!((d.max_flow(0, 3) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn pair_max_flow_on_rings() {
        let uni = builders::ring_unidirectional(8).unwrap();
        // Single forced path of capacity 1.
        assert!((pair_max_flow(&uni, 0, 5) - 1.0).abs() < 1e-9);
        let bi = builders::ring_bidirectional(8).unwrap();
        // Both directions usable: 0.5 + 0.5.
        assert!((pair_max_flow(&bi, 0, 3) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pair_max_flow_upper_bounds_concurrent_flow() {
        use crate::forced::forced_path_throughput;
        let t = builders::ring_unidirectional(8).unwrap();
        let m = Matching::shift(8, 3).unwrap();
        let (theta, _) = forced_path_throughput(&t, &m).unwrap();
        for (s, d) in m.pairs() {
            assert!(theta <= pair_max_flow(&t, s, d) + 1e-9);
        }
    }

    #[test]
    fn pair_max_flow_on_matched_and_disconnected() {
        let shift3 = Matching::shift(8, 3).unwrap();
        let matched = builders::from_matching(&shift3);
        // Dedicated circuit, then relaying around the single cycle formed by
        // shift(3) circuits (gcd(3,8)=1 → one cycle): always reachable, 1.0.
        assert!((pair_max_flow(&matched, 0, 3) - 1.0).abs() < 1e-9);
        assert!((pair_max_flow(&matched, 0, 1) - 1.0).abs() < 1e-9);
        let mut islands = Dinic::new(4);
        islands.add_edge(0, 1, 1.0);
        assert_eq!(islands.max_flow(2, 3), 0.0);
    }
}
