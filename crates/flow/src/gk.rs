//! Garg–Könemann / Fleischer FPTAS for maximum concurrent flow.
//!
//! Computes, for an arbitrary capacitated directed graph and a set of
//! commodities, a feasible multicommodity flow routing the *same fraction* θ
//! of every demand, together with a matching LP-dual upper bound:
//!
//! ```text
//! lower_bound ≤ θ* ≤ upper_bound,   lower_bound ≥ (1 − 3ε)·θ*
//! ```
//!
//! The length-function mechanics follow Fleischer's phase variant: start with
//! `l_e = δ/c_e`, repeatedly route each commodity's full demand along
//! successive shortest paths while multiplying traversed link lengths by
//! `(1 + ε·u/c_e)`, and stop once `D(l) = Σ_e l_e·c_e ≥ 1`. Each completed
//! phase routes one copy of every demand; scaling the accumulated flow by
//! `log_{1+ε}((1+ε)/δ)` makes it capacity-feasible.
//!
//! The dual bound is weak duality of the concurrent-flow LP: for any lengths
//! `l`, `θ* ≤ D(l) / Σ_j d_j · dist_l(s_j, t_j)`.

use crate::error::FlowError;
use aps_matrix::Matching;
use aps_topology::paths::shortest_path_weighted;
use aps_topology::{Topology, TopologyError};

/// One commodity: `demand` units must travel from `src` to `dst`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Commodity {
    /// Source node.
    pub src: usize,
    /// Destination node.
    pub dst: usize,
    /// Demand volume (same units as link capacities).
    pub demand: f64,
}

/// Converts a matching into unit-demand commodities.
pub fn matching_commodities(matching: &Matching) -> Vec<Commodity> {
    matching
        .pairs()
        .map(|(src, dst)| Commodity {
            src,
            dst,
            demand: 1.0,
        })
        .collect()
}

/// Result of the concurrent-flow FPTAS.
#[derive(Debug, Clone)]
pub struct ConcurrentFlowResult {
    /// Certified *achievable* concurrent flow fraction (feasible flow).
    pub lower_bound: f64,
    /// Certified LP-dual upper bound on the optimum.
    pub upper_bound: f64,
    /// Maximum hop count among the paths the solution uses (the `ℓ` of
    /// eq. (3) under this routing).
    pub max_hops: usize,
    /// Feasible flow per link, scaled to the `lower_bound` solution.
    pub link_flow: Vec<f64>,
    /// Number of completed phases.
    pub phases: usize,
}

/// Runs the FPTAS with accuracy `epsilon ∈ (0, 0.5)`.
///
/// # Errors
///
/// * [`FlowError::BadEpsilon`] for out-of-range `epsilon`;
/// * [`FlowError::Routing`] if a commodity's endpoints are disconnected.
pub fn max_concurrent_flow(
    topo: &Topology,
    commodities: &[Commodity],
    epsilon: f64,
) -> Result<ConcurrentFlowResult, FlowError> {
    if !(epsilon > 0.0 && epsilon < 0.5) {
        return Err(FlowError::BadEpsilon(epsilon));
    }
    if commodities.is_empty() {
        return Ok(ConcurrentFlowResult {
            lower_bound: 1.0,
            upper_bound: 1.0,
            max_hops: 0,
            link_flow: vec![0.0; topo.num_links()],
            phases: 0,
        });
    }
    let m = topo.num_links().max(2) as f64;
    let eps = epsilon;
    // δ = (m / (1-ε))^(-1/ε); lengths start at δ/c_e.
    let delta = (m / (1.0 - eps)).powf(-1.0 / eps);
    let caps: Vec<f64> = topo.links().iter().map(|l| l.capacity).collect();
    let mut len: Vec<f64> = caps.iter().map(|c| delta / c).collect();
    let mut d_sum: f64 = len.iter().zip(&caps).map(|(l, c)| l * c).sum();
    let mut raw_flow = vec![0.0f64; topo.num_links()];
    let mut max_hops = 0usize;
    let mut phases = 0usize;

    // log_{1+ε}((1+ε)/δ): the feasibility scale factor.
    let scale = ((1.0 + eps) / delta).ln() / (1.0 + eps).ln();
    // Guard: phases cannot exceed OPT·scale and OPT ≤ Σd/ min cut ≥ ...;
    // use a generous numeric cap to stay safe against degeneracies.
    let max_phases = (scale.ceil() as usize) * 4 + 16;

    'outer: while d_sum < 1.0 {
        for com in commodities {
            let mut remaining = com.demand;
            while d_sum < 1.0 && remaining > 0.0 {
                let (_, path) = shortest_path_weighted(topo, com.src, com.dst, &len).ok_or(
                    FlowError::Routing(TopologyError::Unreachable {
                        src: com.src,
                        dst: com.dst,
                    }),
                )?;
                let bottleneck = path
                    .links
                    .iter()
                    .map(|&e| caps[e])
                    .fold(f64::INFINITY, f64::min);
                let u = remaining.min(bottleneck);
                max_hops = max_hops.max(path.hops());
                for &e in &path.links {
                    raw_flow[e] += u;
                    let old = len[e];
                    len[e] = old * (1.0 + eps * u / caps[e]);
                    d_sum += (len[e] - old) * caps[e];
                }
                remaining -= u;
            }
            if d_sum >= 1.0 {
                break 'outer;
            }
        }
        phases += 1;
        if phases >= max_phases {
            break;
        }
    }

    let lower_bound = phases as f64 / scale;
    // Dual bound at the final lengths.
    let mut alpha = 0.0;
    for com in commodities {
        let (dist, _) = shortest_path_weighted(topo, com.src, com.dst, &len).ok_or(
            FlowError::Routing(TopologyError::Unreachable {
                src: com.src,
                dst: com.dst,
            }),
        )?;
        alpha += com.demand * dist;
    }
    let upper_dual = if alpha > 0.0 {
        d_sum / alpha
    } else {
        f64::INFINITY
    };
    // Cheap structural bounds: no sender can exceed its egress capacity, no
    // receiver its ingress capacity.
    let mut structural = f64::INFINITY;
    for com in commodities {
        structural = structural
            .min(topo.egress_capacity(com.src) / com.demand)
            .min(topo.ingress_capacity(com.dst) / com.demand);
    }
    let upper_bound = upper_dual.min(structural);
    let feasible_scale = 1.0 / scale;
    let link_flow = raw_flow.iter().map(|f| f * feasible_scale).collect();

    Ok(ConcurrentFlowResult {
        lower_bound,
        upper_bound,
        max_hops,
        link_flow,
        phases,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aps_topology::builders;

    fn check_sandwich(lb: f64, exact: f64, ub: f64, eps: f64) {
        assert!(
            lb <= exact * (1.0 + 1e-9),
            "lower bound {lb} exceeds exact {exact}"
        );
        assert!(
            ub >= exact * (1.0 - 1e-9),
            "upper bound {ub} below exact {exact}"
        );
        assert!(
            lb >= (1.0 - 3.2 * eps) * exact,
            "lower bound {lb} too loose vs exact {exact} at eps {eps}"
        );
    }

    #[test]
    fn single_commodity_on_uni_ring() {
        let t = builders::ring_unidirectional(6).unwrap();
        let coms = [Commodity {
            src: 0,
            dst: 3,
            demand: 1.0,
        }];
        let r = max_concurrent_flow(&t, &coms, 0.1).unwrap();
        // Unique path of capacity 1 → θ* = 1.
        check_sandwich(r.lower_bound, 1.0, r.upper_bound, 0.1);
        assert_eq!(r.max_hops, 3);
    }

    #[test]
    fn shift_on_uni_ring_matches_closed_form() {
        let t = builders::ring_unidirectional(8).unwrap();
        for k in [1usize, 2, 3, 5] {
            let m = Matching::shift(8, k).unwrap();
            let coms = matching_commodities(&m);
            let r = max_concurrent_flow(&t, &coms, 0.1).unwrap();
            check_sandwich(r.lower_bound, 1.0 / k as f64, r.upper_bound, 0.1);
        }
    }

    #[test]
    fn shift_on_bidirectional_ring_beats_forced_paths() {
        // Splittable optimum for shift(k) on a bidirectional ring with 0.5
        // capacity per direction: θ* = n / (2·k·(n−k)).
        let n = 8;
        let t = builders::ring_bidirectional(n).unwrap();
        let k = 3;
        let m = Matching::shift(n, k).unwrap();
        let r = max_concurrent_flow(&t, &matching_commodities(&m), 0.08).unwrap();
        let exact = n as f64 / (2.0 * k as f64 * (n - k) as f64);
        check_sandwich(r.lower_bound, exact, r.upper_bound, 0.08);
        // Forced single-path routing only achieves 0.5/k; splitting wins.
        assert!(r.lower_bound > 0.5 / k as f64);
    }

    #[test]
    fn matched_topology_full_throughput() {
        let m = Matching::shift(6, 2).unwrap();
        let t = builders::from_matching(&m);
        let r = max_concurrent_flow(&t, &matching_commodities(&m), 0.1).unwrap();
        check_sandwich(r.lower_bound, 1.0, r.upper_bound, 0.1);
        assert_eq!(r.max_hops, 1);
    }

    #[test]
    fn link_flow_is_capacity_feasible() {
        let t = builders::ring_bidirectional(8).unwrap();
        let m = Matching::shift(8, 3).unwrap();
        let r = max_concurrent_flow(&t, &matching_commodities(&m), 0.1).unwrap();
        for (lid, f) in r.link_flow.iter().enumerate() {
            assert!(
                *f <= t.link(lid).capacity * (1.0 + 1e-9),
                "link {lid} overloaded: {f}"
            );
        }
    }

    #[test]
    fn empty_commodities_convention() {
        let t = builders::ring_unidirectional(4).unwrap();
        let r = max_concurrent_flow(&t, &[], 0.1).unwrap();
        assert_eq!(r.lower_bound, 1.0);
        assert_eq!(r.max_hops, 0);
    }

    #[test]
    fn rejects_bad_epsilon() {
        let t = builders::ring_unidirectional(4).unwrap();
        for eps in [0.0, -0.1, 0.5, 1.0] {
            assert!(matches!(
                max_concurrent_flow(&t, &[], eps),
                Err(FlowError::BadEpsilon(_))
            ));
        }
    }

    #[test]
    fn unreachable_commodity_errors() {
        let mut t = Topology::new(4, "islands");
        t.add_link(0, 1, 1.0).unwrap();
        t.add_link(1, 0, 1.0).unwrap();
        t.add_link(2, 3, 1.0).unwrap();
        t.add_link(3, 2, 1.0).unwrap();
        let coms = [Commodity {
            src: 0,
            dst: 2,
            demand: 1.0,
        }];
        assert!(matches!(
            max_concurrent_flow(&t, &coms, 0.1),
            Err(FlowError::Routing(TopologyError::Unreachable {
                src: 0,
                dst: 2
            }))
        ));
    }

    #[test]
    fn hypercube_xor_pattern() {
        // On a hypercube with capacity 1/d per link, the xor(bit) pattern
        // uses exactly the dimension-bit links: one flow per link → θ* = 1/d.
        let n = 8;
        let d = 3.0;
        let t = builders::hypercube(n).unwrap();
        let m = Matching::xor(n, 1).unwrap();
        let r = max_concurrent_flow(&t, &matching_commodities(&m), 0.1).unwrap();
        check_sandwich(r.lower_bound, 1.0 / d, r.upper_bound, 0.1);
    }
}
