//! Unified throughput-solver API and memoization.
//!
//! `aps-cost` and `aps-core` consume `θ(G, Mᵢ)` and `ℓᵢ` through this
//! interface. The same matching frequently recurs across steps, message
//! sizes and sweep cells (e.g. the shift-by-1 of a ring reduce-scatter
//! appears `n-1` times per collective and in every sweep cell), so a
//! [`ThetaCache`] keyed by the matching makes sweeps cheap.

use crate::error::FlowError;
use crate::forced::forced_path_throughput;
use crate::gk::{matching_commodities, max_concurrent_flow};
use crate::proxy::degree_proxy_throughput;
use aps_matrix::Matching;
use aps_topology::Topology;
use std::collections::HashMap;

/// Which algorithm computes `θ(G, M)`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ThroughputSolver {
    /// Deterministic shortest-path routing; exact on forced-routing
    /// topologies (unidirectional rings, matched configurations) and exactly
    /// what the flow-level simulator achieves elsewhere. The default.
    #[default]
    ForcedPath,
    /// Garg–Könemann FPTAS with splittable routing; `θ` is the certified
    /// achievable lower bound.
    GargKonemann {
        /// Accuracy parameter `ε ∈ (0, 0.5)`; the result is within
        /// `(1 − 3ε)` of optimal.
        epsilon: f64,
    },
    /// The cheap degree/path-length upper bound of the paper's research
    /// agenda (§4). Optimistic: `θ̂ ≥ θ`.
    DegreeProxy,
}

/// Throughput figures for one step on one topology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepThroughput {
    /// Concurrent flow `θ(G, M)` (solver-dependent semantics: achievable
    /// value for `ForcedPath`/`GargKonemann`, upper bound for `DegreeProxy`).
    pub theta: f64,
    /// Certified upper bound on the optimum (equals `theta` for solvers that
    /// are exact).
    pub theta_upper: f64,
    /// Propagation hop count `ℓ` of the step (eq. (3)).
    pub max_hops: usize,
}

/// Computes the throughput of one step (matching) on a topology.
///
/// # Errors
///
/// Propagates routing and parameterization errors from the chosen solver.
pub fn step_throughput(
    topo: &Topology,
    matching: &Matching,
    solver: ThroughputSolver,
) -> Result<StepThroughput, FlowError> {
    match solver {
        ThroughputSolver::ForcedPath => {
            let (theta, max_hops) = forced_path_throughput(topo, matching)?;
            Ok(StepThroughput {
                theta,
                theta_upper: theta,
                max_hops,
            })
        }
        ThroughputSolver::GargKonemann { epsilon } => {
            let r = max_concurrent_flow(topo, &matching_commodities(matching), epsilon)?;
            Ok(StepThroughput {
                theta: r.lower_bound.min(r.upper_bound),
                theta_upper: r.upper_bound,
                max_hops: if matching.is_empty() { 0 } else { r.max_hops },
            })
        }
        ThroughputSolver::DegreeProxy => {
            let (theta, max_hops) = degree_proxy_throughput(topo, matching)?;
            Ok(StepThroughput {
                theta,
                theta_upper: theta,
                max_hops,
            })
        }
    }
}

/// Hit/miss counters of a [`ThetaCache`] — mergeable across the per-worker
/// caches of a parallel sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the memo table.
    pub hits: u64,
    /// Lookups that had to run the solver.
    pub misses: u64,
    /// Matchings currently memoized (equals `misses` for a cache that was
    /// never queried across topologies; summed over workers it counts each
    /// worker's copy separately).
    pub entries: usize,
}

impl CacheStats {
    /// Accumulates another cache's counters (e.g. a parallel worker's).
    pub fn merge(&mut self, other: CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.entries += other.entries;
    }

    /// Total lookups served.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }
}

/// Memoizes [`step_throughput`] per `(topology, solver)` over matchings.
///
/// Cloning a cache clones its memo table — the cheap way to hand each
/// worker of a parallel sweep a private, pre-warmed copy (see
/// [`ThetaCache::warm`]).
#[derive(Debug, Clone)]
pub struct ThetaCache {
    topology_name: String,
    topology_n: usize,
    solver: ThroughputSolver,
    map: HashMap<Matching, StepThroughput>,
    hits: u64,
    misses: u64,
}

impl ThetaCache {
    /// Creates an empty cache bound to `topo` and `solver`.
    pub fn new(topo: &Topology, solver: ThroughputSolver) -> Self {
        Self {
            topology_name: topo.name().to_string(),
            topology_n: topo.n(),
            solver,
            map: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Computes (or recalls) the throughput of `matching` on `topo`.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::CacheTopologyMismatch`] when queried with a
    /// topology other than the one the cache was built for, and propagates
    /// solver errors.
    pub fn get(
        &mut self,
        topo: &Topology,
        matching: &Matching,
    ) -> Result<StepThroughput, FlowError> {
        if topo.name() != self.topology_name || topo.n() != self.topology_n {
            return Err(FlowError::CacheTopologyMismatch {
                expected: self.topology_name.clone(),
                got: topo.name().to_string(),
            });
        }
        if let Some(hit) = self.map.get(matching) {
            self.hits += 1;
            return Ok(*hit);
        }
        let v = step_throughput(topo, matching, self.solver)?;
        self.map.insert(matching.clone(), v);
        self.misses += 1;
        Ok(v)
    }

    /// Prices a set of matchings **in parallel** and returns a cache with
    /// every one memoized. This is the hot phase of a sweep: θ solves are
    /// embarrassingly parallel across matchings, whereas parallelizing the
    /// sweep rows would re-price the same matchings once per worker.
    /// Duplicate matchings are deduplicated (first occurrence wins — the
    /// result is identical either way, since solving is pure).
    ///
    /// The returned cache counts one miss per unique matching priced and no
    /// hits. Results are bit-identical at any `pool` width.
    ///
    /// # Errors
    ///
    /// Propagates solver errors; across failing matchings, the error of the
    /// first (in iteration order) is returned.
    pub fn warm<'a>(
        pool: &aps_par::Pool,
        topo: &Topology,
        solver: ThroughputSolver,
        matchings: impl IntoIterator<Item = &'a Matching>,
    ) -> Result<Self, FlowError> {
        let mut unique: Vec<&Matching> = Vec::new();
        let mut seen: std::collections::HashSet<&Matching> = std::collections::HashSet::new();
        for m in matchings {
            if seen.insert(m) {
                unique.push(m);
            }
        }
        let priced = pool.try_map(&unique, |_, m| step_throughput(topo, m, solver))?;
        let mut cache = Self::new(topo, solver);
        cache.misses = unique.len() as u64;
        cache.map = unique.into_iter().cloned().zip(priced).collect();
        Ok(cache)
    }

    /// Zeroes the hit/miss counters, keeping the memo table. Used after
    /// cloning a warmed cache into a worker so per-worker counters measure
    /// only that worker's lookups.
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Hit/miss/entry counters since construction.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.map.len(),
        }
    }

    /// Number of memoized matchings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aps_topology::builders;

    #[test]
    fn solvers_agree_on_uni_ring_shifts() {
        let t = builders::ring_unidirectional(8).unwrap();
        let m = Matching::shift(8, 3).unwrap();
        let forced = step_throughput(&t, &m, ThroughputSolver::ForcedPath).unwrap();
        let gk = step_throughput(&t, &m, ThroughputSolver::GargKonemann { epsilon: 0.1 }).unwrap();
        let proxy = step_throughput(&t, &m, ThroughputSolver::DegreeProxy).unwrap();
        assert!((forced.theta - 1.0 / 3.0).abs() < 1e-12);
        assert!(gk.theta <= forced.theta + 1e-9);
        assert!(gk.theta_upper >= forced.theta - 1e-9);
        assert!(proxy.theta >= forced.theta - 1e-12);
        assert_eq!(forced.max_hops, 3);
    }

    #[test]
    fn cache_hits_and_guards() {
        let t = builders::ring_unidirectional(8).unwrap();
        let mut cache = ThetaCache::new(&t, ThroughputSolver::ForcedPath);
        assert!(cache.is_empty());
        let m = Matching::shift(8, 2).unwrap();
        let a = cache.get(&t, &m).unwrap();
        let b = cache.get(&t, &m).unwrap();
        assert_eq!(a, b);
        assert_eq!(cache.len(), 1);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.lookups(), 2);
        let mut merged = CacheStats::default();
        merged.merge(stats);
        merged.merge(stats);
        assert_eq!(merged.hits, 2);
        assert_eq!(merged.entries, 2);
        let other = builders::ring_bidirectional(8).unwrap();
        assert!(matches!(
            cache.get(&other, &m),
            Err(FlowError::CacheTopologyMismatch { .. })
        ));
    }

    #[test]
    fn warm_prices_unique_matchings_in_parallel_and_identically() {
        let t = builders::ring_unidirectional(8).unwrap();
        let shifts: Vec<Matching> = [1, 2, 3, 2, 1, 5]
            .iter()
            .map(|&k| Matching::shift(8, k).unwrap())
            .collect();
        let mut serial = ThetaCache::warm(
            &aps_par::Pool::serial(),
            &t,
            ThroughputSolver::ForcedPath,
            &shifts,
        )
        .unwrap();
        let warm4 = ThetaCache::warm(
            &aps_par::Pool::new(4),
            &t,
            ThroughputSolver::ForcedPath,
            &shifts,
        )
        .unwrap();
        // Duplicates deduplicated: 4 unique shifts, all counted as misses.
        for c in [&serial, &warm4] {
            assert_eq!(c.len(), 4);
            assert_eq!(c.stats().misses, 4);
            assert_eq!(c.stats().hits, 0);
        }
        // Every lookup on a warmed cache is a hit, and values match the
        // direct solver at any pool width.
        let mut warm4 = warm4;
        for m in &shifts {
            let direct = step_throughput(&t, m, ThroughputSolver::ForcedPath).unwrap();
            assert_eq!(serial.get(&t, m).unwrap(), direct);
            assert_eq!(warm4.get(&t, m).unwrap(), direct);
        }
        assert_eq!(warm4.stats().hits, 6);
        // Clone + reset gives a fresh counter over the same memo table.
        let mut clone = warm4.clone();
        clone.reset_stats();
        assert_eq!(clone.len(), 4);
        assert_eq!(
            clone.stats(),
            CacheStats {
                hits: 0,
                misses: 0,
                entries: 4
            }
        );
        // Reset or not, the underlying values are still all hits.
        serial.reset_stats();
        serial.get(&t, &shifts[0]).unwrap();
        assert_eq!(serial.stats().hits, 1);
    }

    #[test]
    fn default_solver_is_forced_path() {
        assert_eq!(ThroughputSolver::default(), ThroughputSolver::ForcedPath);
    }
}
