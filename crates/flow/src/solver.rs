//! Unified throughput-solver API and memoization.
//!
//! `aps-cost` and `aps-core` consume `θ(G, Mᵢ)` and `ℓᵢ` through this
//! interface. The same matching frequently recurs across steps, message
//! sizes and sweep cells (e.g. the shift-by-1 of a ring reduce-scatter
//! appears `n-1` times per collective and in every sweep cell), so a
//! [`ThetaCache`] keyed by the matching makes sweeps cheap.

use crate::error::FlowError;
use crate::forced::forced_path_throughput;
use crate::gk::{matching_commodities, max_concurrent_flow};
use crate::proxy::degree_proxy_throughput;
use aps_matrix::Matching;
use aps_topology::Topology;
use std::collections::HashMap;

/// Which algorithm computes `θ(G, M)`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ThroughputSolver {
    /// Deterministic shortest-path routing; exact on forced-routing
    /// topologies (unidirectional rings, matched configurations) and exactly
    /// what the flow-level simulator achieves elsewhere. The default.
    #[default]
    ForcedPath,
    /// Garg–Könemann FPTAS with splittable routing; `θ` is the certified
    /// achievable lower bound.
    GargKonemann {
        /// Accuracy parameter `ε ∈ (0, 0.5)`; the result is within
        /// `(1 − 3ε)` of optimal.
        epsilon: f64,
    },
    /// The cheap degree/path-length upper bound of the paper's research
    /// agenda (§4). Optimistic: `θ̂ ≥ θ`.
    DegreeProxy,
}

/// Throughput figures for one step on one topology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepThroughput {
    /// Concurrent flow `θ(G, M)` (solver-dependent semantics: achievable
    /// value for `ForcedPath`/`GargKonemann`, upper bound for `DegreeProxy`).
    pub theta: f64,
    /// Certified upper bound on the optimum (equals `theta` for solvers that
    /// are exact).
    pub theta_upper: f64,
    /// Propagation hop count `ℓ` of the step (eq. (3)).
    pub max_hops: usize,
}

/// Computes the throughput of one step (matching) on a topology.
///
/// # Errors
///
/// Propagates routing and parameterization errors from the chosen solver.
pub fn step_throughput(
    topo: &Topology,
    matching: &Matching,
    solver: ThroughputSolver,
) -> Result<StepThroughput, FlowError> {
    match solver {
        ThroughputSolver::ForcedPath => {
            let (theta, max_hops) = forced_path_throughput(topo, matching)?;
            Ok(StepThroughput {
                theta,
                theta_upper: theta,
                max_hops,
            })
        }
        ThroughputSolver::GargKonemann { epsilon } => {
            let r = max_concurrent_flow(topo, &matching_commodities(matching), epsilon)?;
            Ok(StepThroughput {
                theta: r.lower_bound.min(r.upper_bound),
                theta_upper: r.upper_bound,
                max_hops: if matching.is_empty() { 0 } else { r.max_hops },
            })
        }
        ThroughputSolver::DegreeProxy => {
            let (theta, max_hops) = degree_proxy_throughput(topo, matching)?;
            Ok(StepThroughput {
                theta,
                theta_upper: theta,
                max_hops,
            })
        }
    }
}

/// Memoizes [`step_throughput`] per `(topology, solver)` over matchings.
#[derive(Debug)]
pub struct ThetaCache {
    topology_name: String,
    topology_n: usize,
    solver: ThroughputSolver,
    map: HashMap<Matching, StepThroughput>,
}

impl ThetaCache {
    /// Creates an empty cache bound to `topo` and `solver`.
    pub fn new(topo: &Topology, solver: ThroughputSolver) -> Self {
        Self {
            topology_name: topo.name().to_string(),
            topology_n: topo.n(),
            solver,
            map: HashMap::new(),
        }
    }

    /// Computes (or recalls) the throughput of `matching` on `topo`.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::CacheTopologyMismatch`] when queried with a
    /// topology other than the one the cache was built for, and propagates
    /// solver errors.
    pub fn get(
        &mut self,
        topo: &Topology,
        matching: &Matching,
    ) -> Result<StepThroughput, FlowError> {
        if topo.name() != self.topology_name || topo.n() != self.topology_n {
            return Err(FlowError::CacheTopologyMismatch {
                expected: self.topology_name.clone(),
                got: topo.name().to_string(),
            });
        }
        if let Some(hit) = self.map.get(matching) {
            return Ok(*hit);
        }
        let v = step_throughput(topo, matching, self.solver)?;
        self.map.insert(matching.clone(), v);
        Ok(v)
    }

    /// Number of memoized matchings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aps_topology::builders;

    #[test]
    fn solvers_agree_on_uni_ring_shifts() {
        let t = builders::ring_unidirectional(8).unwrap();
        let m = Matching::shift(8, 3).unwrap();
        let forced = step_throughput(&t, &m, ThroughputSolver::ForcedPath).unwrap();
        let gk = step_throughput(&t, &m, ThroughputSolver::GargKonemann { epsilon: 0.1 }).unwrap();
        let proxy = step_throughput(&t, &m, ThroughputSolver::DegreeProxy).unwrap();
        assert!((forced.theta - 1.0 / 3.0).abs() < 1e-12);
        assert!(gk.theta <= forced.theta + 1e-9);
        assert!(gk.theta_upper >= forced.theta - 1e-9);
        assert!(proxy.theta >= forced.theta - 1e-12);
        assert_eq!(forced.max_hops, 3);
    }

    #[test]
    fn cache_hits_and_guards() {
        let t = builders::ring_unidirectional(8).unwrap();
        let mut cache = ThetaCache::new(&t, ThroughputSolver::ForcedPath);
        assert!(cache.is_empty());
        let m = Matching::shift(8, 2).unwrap();
        let a = cache.get(&t, &m).unwrap();
        let b = cache.get(&t, &m).unwrap();
        assert_eq!(a, b);
        assert_eq!(cache.len(), 1);
        let other = builders::ring_bidirectional(8).unwrap();
        assert!(matches!(
            cache.get(&other, &m),
            Err(FlowError::CacheTopologyMismatch { .. })
        ));
    }

    #[test]
    fn default_solver_is_forced_path() {
        assert_eq!(ThroughputSolver::default(), ThroughputSolver::ForcedPath);
    }
}
