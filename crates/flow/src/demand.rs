//! Concurrent flow for *weighted demand matrices* — the multi-ported
//! generalization.
//!
//! The paper's base model assumes one transceiver per GPU, so a step is a
//! single permutation. Its research agenda (§4) asks about "multi-ported
//! collectives where each step is not a single permutation but a union of
//! multiple permutations". A union of matchings is exactly a demand matrix
//! with small integer multiplicities; this module computes `θ(G, D)` for
//! such matrices, mirroring the matching-based solvers:
//!
//! * forced shortest-path routing (exact on forced-routing topologies),
//! * Garg–Könemann FPTAS (weighted commodities),
//! * the degree proxy (volume-weighted hop bound).

use crate::error::FlowError;
use crate::gk::{max_concurrent_flow, Commodity, ConcurrentFlowResult};
use aps_matrix::DemandMatrix;
use aps_topology::paths::{all_pairs_hops, shortest_path};
use aps_topology::{Topology, TopologyError};

/// Converts a demand matrix into weighted commodities.
pub fn demand_commodities(d: &DemandMatrix) -> Vec<Commodity> {
    d.entries()
        .map(|(src, dst, demand)| Commodity { src, dst, demand })
        .collect()
}

/// Forced shortest-path `θ(G, D)` and max hop count for a weighted demand.
///
/// Every entry `(s, d, v)` is routed on its deterministic shortest path;
/// `θ = min_e cap_e / load_e` with `load_e = Σ v` over paths crossing `e`.
/// Empty demands return `(1.0, 0)` by convention.
///
/// # Errors
///
/// Fails on dimension mismatches or unreachable pairs.
pub fn forced_path_demand_throughput(
    topo: &Topology,
    demand: &DemandMatrix,
) -> Result<(f64, usize), FlowError> {
    if topo.n() != demand.n() {
        return Err(FlowError::DimensionMismatch {
            topology: topo.n(),
            matching: demand.n(),
        });
    }
    let mut loads = vec![0.0f64; topo.num_links()];
    let mut max_hops = 0usize;
    let mut any = false;
    for (src, dst, v) in demand.entries() {
        let path = shortest_path(topo, src, dst)
            .ok_or(FlowError::Routing(TopologyError::Unreachable { src, dst }))?;
        max_hops = max_hops.max(path.hops());
        for &lid in &path.links {
            loads[lid] += v;
        }
        any = true;
    }
    if !any {
        return Ok((1.0, 0));
    }
    let worst = loads
        .iter()
        .enumerate()
        .map(|(lid, &l)| l / topo.link(lid).capacity)
        .fold(0.0, f64::max);
    Ok((1.0 / worst, max_hops))
}

/// Garg–Könemann FPTAS over a weighted demand matrix.
///
/// # Errors
///
/// Propagates FPTAS errors.
pub fn gk_demand_throughput(
    topo: &Topology,
    demand: &DemandMatrix,
    epsilon: f64,
) -> Result<ConcurrentFlowResult, FlowError> {
    if topo.n() != demand.n() {
        return Err(FlowError::DimensionMismatch {
            topology: topo.n(),
            matching: demand.n(),
        });
    }
    max_concurrent_flow(topo, &demand_commodities(demand), epsilon)
}

/// Degree/path-length proxy for a weighted demand: an *upper bound*
/// combining the capacity-volume bound (`Σ_e c_e / Σ v·hops_min`) with
/// per-node interface limits (`egress(s)/Σ_d D(s,·)`, `ingress(d)/Σ D(·,d)`).
///
/// # Errors
///
/// Fails on dimension mismatches or unreachable pairs.
pub fn degree_proxy_demand_throughput(
    topo: &Topology,
    demand: &DemandMatrix,
) -> Result<(f64, usize), FlowError> {
    if topo.n() != demand.n() {
        return Err(FlowError::DimensionMismatch {
            topology: topo.n(),
            matching: demand.n(),
        });
    }
    let hops = all_pairs_hops(topo);
    let total_capacity: f64 = topo.links().iter().map(|l| l.capacity).sum();
    let mut hop_volume = 0.0;
    let mut max_hops = 0usize;
    let mut any = false;
    for (src, dst, v) in demand.entries() {
        let h = hops[src][dst].ok_or(FlowError::Routing(TopologyError::Unreachable { src, dst }))?
            as usize;
        hop_volume += v * h as f64;
        max_hops = max_hops.max(h);
        any = true;
    }
    if !any {
        return Ok((1.0, 0));
    }
    let rows = demand.row_sums();
    let cols = demand.col_sums();
    let mut interface = f64::INFINITY;
    for v in 0..topo.n() {
        if rows[v] > 0.0 {
            interface = interface.min(topo.egress_capacity(v) / rows[v]);
        }
        if cols[v] > 0.0 {
            interface = interface.min(topo.ingress_capacity(v) / cols[v]);
        }
    }
    Ok(((total_capacity / hop_volume).min(interface), max_hops))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aps_matrix::Matching;
    use aps_topology::builders;

    /// Union of two matchings as a multiplicity matrix.
    fn union(n: usize, a: &Matching, b: &Matching) -> DemandMatrix {
        DemandMatrix::from_matchings(n, &[(1.0, a), (1.0, b)]).unwrap()
    }

    #[test]
    fn unit_matching_demand_matches_matching_solver() {
        let n = 8;
        let t = builders::ring_unidirectional(n).unwrap();
        let m = Matching::shift(n, 3).unwrap();
        let d = DemandMatrix::from_matchings(n, &[(1.0, &m)]).unwrap();
        let (theta_d, ell_d) = forced_path_demand_throughput(&t, &d).unwrap();
        let (theta_m, ell_m) = crate::forced::forced_path_throughput(&t, &m).unwrap();
        assert!((theta_d - theta_m).abs() < 1e-12);
        assert_eq!(ell_d, ell_m);
    }

    #[test]
    fn union_of_two_shifts_on_two_rings() {
        // Base: two co-prime rings (strides 1 and 3), capacity 0.5 each.
        // Demand: shift(1) ∪ shift(3) — each ring serves one pattern in a
        // single hop at load 1 → θ = 0.5.
        let n = 8;
        let t = builders::coprime_rings(n, &[1, 3]).unwrap();
        let d = union(
            n,
            &Matching::shift(n, 1).unwrap(),
            &Matching::shift(n, 3).unwrap(),
        );
        let (theta, ell) = forced_path_demand_throughput(&t, &d).unwrap();
        assert!((theta - 0.5).abs() < 1e-12);
        assert_eq!(ell, 1);
    }

    #[test]
    fn multiplicity_two_halves_throughput() {
        let n = 8;
        let t = builders::ring_unidirectional(n).unwrap();
        let m = Matching::shift(n, 2).unwrap();
        let single = DemandMatrix::from_matchings(n, &[(1.0, &m)]).unwrap();
        let double = DemandMatrix::from_matchings(n, &[(2.0, &m)]).unwrap();
        let (t1, _) = forced_path_demand_throughput(&t, &single).unwrap();
        let (t2, _) = forced_path_demand_throughput(&t, &double).unwrap();
        assert!((t2 - t1 / 2.0).abs() < 1e-12);
    }

    #[test]
    fn gk_demand_agrees_with_forced_on_uni_ring() {
        let n = 8;
        let t = builders::ring_unidirectional(n).unwrap();
        let d = union(
            n,
            &Matching::shift(n, 1).unwrap(),
            &Matching::shift(n, 2).unwrap(),
        );
        let (exact, _) = forced_path_demand_throughput(&t, &d).unwrap();
        let r = gk_demand_throughput(&t, &d, 0.1).unwrap();
        assert!(r.lower_bound <= exact * (1.0 + 1e-9));
        assert!(r.upper_bound >= exact * (1.0 - 1e-9));
        assert!(r.lower_bound >= exact * (1.0 - 0.31));
    }

    #[test]
    fn proxy_upper_bounds_forced() {
        let n = 8;
        let t = builders::coprime_rings(n, &[1, 3]).unwrap();
        let d = union(
            n,
            &Matching::shift(n, 2).unwrap(),
            &Matching::xor(n, 4).unwrap(),
        );
        let (exact, _) = forced_path_demand_throughput(&t, &d).unwrap();
        let (proxy, _) = degree_proxy_demand_throughput(&t, &d).unwrap();
        assert!(proxy >= exact - 1e-12);
    }

    #[test]
    fn empty_and_mismatched() {
        let t = builders::ring_unidirectional(4).unwrap();
        let empty = DemandMatrix::zeros(4);
        assert_eq!(forced_path_demand_throughput(&t, &empty).unwrap(), (1.0, 0));
        assert_eq!(
            degree_proxy_demand_throughput(&t, &empty).unwrap(),
            (1.0, 0)
        );
        let wrong = DemandMatrix::zeros(6);
        assert!(forced_path_demand_throughput(&t, &wrong).is_err());
        assert!(gk_demand_throughput(&t, &wrong, 0.1).is_err());
        assert!(degree_proxy_demand_throughput(&t, &wrong).is_err());
    }
}
