//! # aps-flow — maximum concurrent flow for collective steps
//!
//! The congestion factor of the paper's cost model (eq. (3)) is `1/θ(G, Mᵢ)`
//! where `θ(G, Mᵢ)` — the *maximum concurrent flow* — is the largest fraction
//! of the step's demand matrix that can be routed simultaneously without
//! exceeding any link capacity. This crate computes `θ` (and the
//! propagation hop count `ℓᵢ`) with several interchangeable solvers:
//!
//! * [`forced::forced_path_throughput`] — exact when routing is forced
//!   (unidirectional rings, matched topologies) and a deterministic
//!   achievable bound elsewhere; this is what the flow-level simulator
//!   realizes, so model and simulation agree by construction.
//! * [`gk::max_concurrent_flow`] — the Garg–Könemann/Fleischer FPTAS for
//!   arbitrary topologies with splittable routing; returns certified lower
//!   *and* upper (LP-dual) bounds.
//! * [`proxy::degree_proxy_throughput`] — the cheap degree/path-length upper
//!   bound the paper's research agenda suggests as a runtime-friendly
//!   congestion proxy (§4 "Simplifying the congestion factor").
//! * [`ring`] — closed forms for ring topologies, used as oracles in tests
//!   and as fast paths in sweeps.
//! * [`dinic`] — single-commodity max-flow, used for feasibility checks and
//!   as a test oracle.
//!
//! The [`solver::ThroughputSolver`] enum and [`solver::ThetaCache`] tie these
//! together behind one API used by `aps-cost` and `aps-core`.

pub mod demand;
pub mod dinic;
pub mod error;
pub mod forced;
pub mod gk;
pub mod proxy;
pub mod ring;
pub mod solver;

pub use error::FlowError;
pub use solver::{step_throughput, CacheStats, StepThroughput, ThetaCache, ThroughputSolver};
