//! Degree/path-length throughput proxy (research agenda §4).
//!
//! The paper suggests that "an upper bound on throughput per permutation
//! pattern based on graph degree could reduce the congestion factor to a
//! function of maximum node degree and the number of communicating GPUs" —
//! trading exactness for scheduling speed. This module implements that
//! proxy:
//!
//! * **capacity-volume bound** — any routing of pair `(s, d)` consumes at
//!   least `hops_min(s, d)` units of link capacity per unit of demand, so
//!   `θ · Σ hops_min ≤ Σ_e c_e`;
//! * **interface bound** — a sender cannot exceed its egress capacity nor a
//!   receiver its ingress capacity.
//!
//! The proxy is the minimum of the two: always an *upper* bound on the true
//! concurrent flow, computable from degrees and shortest-path lengths alone.
//! The ablation harness (`aps-bench`, experiment A3) quantifies how often
//! scheduling decisions made with the proxy agree with exact-θ decisions.

use crate::error::FlowError;
use aps_matrix::Matching;
use aps_topology::paths::all_pairs_hops;
use aps_topology::{Topology, TopologyError};

/// Computes the degree/path-length proxy `θ̂ ≥ θ` and the max shortest-path
/// hop count `ℓ`.
///
/// # Errors
///
/// Returns an error on dimension mismatch or unreachable pairs.
pub fn degree_proxy_throughput(
    topo: &Topology,
    matching: &Matching,
) -> Result<(f64, usize), FlowError> {
    if topo.n() != matching.n() {
        return Err(FlowError::DimensionMismatch {
            topology: topo.n(),
            matching: matching.n(),
        });
    }
    if matching.is_empty() {
        return Ok((1.0, 0));
    }
    let hops = all_pairs_hops(topo);
    let total_capacity: f64 = topo.links().iter().map(|l| l.capacity).sum();
    let mut hop_volume = 0.0f64;
    let mut max_hops = 0usize;
    let mut interface = f64::INFINITY;
    for (s, d) in matching.pairs() {
        let h = hops[s][d].ok_or(FlowError::Routing(TopologyError::Unreachable {
            src: s,
            dst: d,
        }))? as usize;
        hop_volume += h as f64;
        max_hops = max_hops.max(h);
        interface = interface
            .min(topo.egress_capacity(s))
            .min(topo.ingress_capacity(d));
    }
    let capacity_volume = total_capacity / hop_volume;
    Ok((capacity_volume.min(interface), max_hops))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forced::forced_path_throughput;
    use aps_topology::builders;

    #[test]
    fn proxy_upper_bounds_forced_theta_on_rings() {
        let n = 12;
        let t = builders::ring_unidirectional(n).unwrap();
        for k in 1..n {
            let m = Matching::shift(n, k).unwrap();
            let (proxy, ell_p) = degree_proxy_throughput(&t, &m).unwrap();
            let (exact, ell_e) = forced_path_throughput(&t, &m).unwrap();
            assert!(
                proxy >= exact - 1e-12,
                "proxy {proxy} below exact {exact} at k={k}"
            );
            assert_eq!(ell_p, ell_e);
        }
    }

    #[test]
    fn proxy_is_exact_for_uniform_shifts_on_uni_ring() {
        // Uniform shift: total capacity n, hop volume n·k → proxy = 1/k,
        // which equals the exact θ.
        let n = 10;
        let t = builders::ring_unidirectional(n).unwrap();
        for k in 1..n {
            let m = Matching::shift(n, k).unwrap();
            let (proxy, _) = degree_proxy_throughput(&t, &m).unwrap();
            assert!((proxy - 1.0 / k as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn proxy_can_be_loose_for_skewed_patterns() {
        // One long pair + several short pairs: the capacity-volume bound
        // averages the load away while the true bottleneck link is loaded by
        // the long path.
        let n = 8;
        let t = builders::ring_unidirectional(n).unwrap();
        let m = Matching::from_pairs(n, &[(0, 4), (1, 2), (2, 3), (3, 1)]).unwrap();
        let (proxy, _) = degree_proxy_throughput(&t, &m).unwrap();
        let (exact, _) = forced_path_throughput(&t, &m).unwrap();
        assert!(proxy >= exact);
        assert!(proxy > exact + 1e-9, "expected strict looseness here");
    }

    #[test]
    fn interface_bound_caps_at_one_on_matched_topologies() {
        let m = Matching::shift(6, 2).unwrap();
        let t = builders::from_matching(&m);
        let (proxy, ell) = degree_proxy_throughput(&t, &m).unwrap();
        assert!((proxy - 1.0).abs() < 1e-12);
        assert_eq!(ell, 1);
    }

    #[test]
    fn error_paths() {
        let t = builders::ring_unidirectional(4).unwrap();
        assert!(matches!(
            degree_proxy_throughput(&t, &Matching::shift(6, 1).unwrap()),
            Err(FlowError::DimensionMismatch { .. })
        ));
        let empty = Matching::empty(4);
        assert_eq!(degree_proxy_throughput(&t, &empty).unwrap(), (1.0, 0));
    }
}
