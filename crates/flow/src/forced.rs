//! Forced-path (deterministic shortest-path) concurrent flow.
//!
//! When every pair's route is forced — as on a unidirectional ring or a
//! matched circuit topology — the maximum concurrent flow has a closed form:
//! route each unit demand on its unique path, then
//!
//! ```text
//! θ = min over links  capacity(e) / load(e)
//! ```
//!
//! On topologies with routing choice this value is what deterministic
//! shortest-path routing *achieves*, hence a valid lower bound on the true
//! (splittable) `θ` and exactly the throughput the `aps-sim` flow-level
//! simulator realizes. `ℓ` is the maximum hop count over the step's flows —
//! the propagation-delay multiplier of eq. (3).

use crate::error::FlowError;
use aps_matrix::Matching;
use aps_topology::routing::{max_hops, normalized_loads, route_matching};
use aps_topology::Topology;

/// Throughput and hop count of a step under forced shortest-path routing.
///
/// Returns `(theta, max_hops)`. For an empty matching, `θ = 1` and
/// `ℓ = 0` by convention (the step carries no traffic; the cost model will
/// multiply by `m = 0` anyway).
///
/// # Errors
///
/// Returns an error if the matching and topology disagree on `n` or a pair
/// is unreachable.
pub fn forced_path_throughput(
    topo: &Topology,
    matching: &Matching,
) -> Result<(f64, usize), FlowError> {
    if topo.n() != matching.n() {
        return Err(FlowError::DimensionMismatch {
            topology: topo.n(),
            matching: matching.n(),
        });
    }
    if matching.is_empty() {
        return Ok((1.0, 0));
    }
    let flows = route_matching(topo, matching)?;
    let worst = normalized_loads(topo, &flows)
        .into_iter()
        .fold(0.0, f64::max);
    debug_assert!(worst > 0.0, "non-empty matching must load some link");
    Ok((1.0 / worst, max_hops(&flows)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aps_topology::builders;

    #[test]
    fn shift_on_uni_ring() {
        let t = builders::ring_unidirectional(8).unwrap();
        for k in 1..8 {
            let m = Matching::shift(8, k).unwrap();
            let (theta, ell) = forced_path_throughput(&t, &m).unwrap();
            assert!((theta - 1.0 / k as f64).abs() < 1e-12, "k={k}");
            assert_eq!(ell, k);
        }
    }

    #[test]
    fn matched_topology_reaches_full_throughput() {
        let m = Matching::shift(10, 3).unwrap();
        let t = builders::from_matching(&m);
        let (theta, ell) = forced_path_throughput(&t, &m).unwrap();
        assert_eq!(theta, 1.0);
        assert_eq!(ell, 1);
    }

    #[test]
    fn xor_on_uni_ring() {
        // i ↔ i+4 on an 8-ring: every flow 4 hops, every link load 4.
        let t = builders::ring_unidirectional(8).unwrap();
        let m = Matching::xor(8, 4).unwrap();
        let (theta, ell) = forced_path_throughput(&t, &m).unwrap();
        assert!((theta - 0.25).abs() < 1e-12);
        assert_eq!(ell, 4);
    }

    #[test]
    fn shift_on_bidirectional_ring_single_path() {
        // Deterministic SP routing sends shift(1) entirely forward on the
        // 0.5-capacity forward links: θ = 0.5.
        let t = builders::ring_bidirectional(8).unwrap();
        let m = Matching::shift(8, 1).unwrap();
        let (theta, ell) = forced_path_throughput(&t, &m).unwrap();
        assert!((theta - 0.5).abs() < 1e-12);
        assert_eq!(ell, 1);
    }

    #[test]
    fn empty_matching_convention() {
        let t = builders::ring_unidirectional(4).unwrap();
        let (theta, ell) = forced_path_throughput(&t, &Matching::empty(4)).unwrap();
        assert_eq!((theta, ell), (1.0, 0));
    }

    #[test]
    fn dimension_mismatch() {
        let t = builders::ring_unidirectional(4).unwrap();
        let m = Matching::shift(6, 1).unwrap();
        assert!(matches!(
            forced_path_throughput(&t, &m),
            Err(FlowError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn partial_matching_loads_only_its_paths() {
        let t = builders::ring_unidirectional(8).unwrap();
        // Single pair 0 → 3: one path of 3 hops, max normalized load 1.
        let m = Matching::from_pairs(8, &[(0, 3)]).unwrap();
        let (theta, ell) = forced_path_throughput(&t, &m).unwrap();
        assert_eq!(theta, 1.0);
        assert_eq!(ell, 3);
    }
}
