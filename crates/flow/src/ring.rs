//! Closed-form concurrent-flow results for ring topologies.
//!
//! Rings are the paper's base topology of choice ("a common choice for
//! scale-up photonic interconnects", §3.4). For uniform-shift patterns the
//! maximum concurrent flow has exact closed forms which serve as
//! (a) fast paths in parameter sweeps and (b) oracles for testing the
//! general solvers.

use aps_matrix::Matching;

/// Exact `θ` for the shift-by-`k` pattern on a unidirectional ring with
/// per-link capacity `cap`: every flow travels `k` forced hops, every link
/// carries `k` flows, so `θ = cap / k`.
///
/// # Panics
///
/// Panics unless `1 ≤ k < n`.
pub fn uni_ring_shift_theta(n: usize, k: usize, cap: f64) -> f64 {
    assert!(k >= 1 && k < n, "shift must satisfy 1 <= k < n");
    cap / k as f64
}

/// Exact splittable `θ` for the shift-by-`k` pattern on a bidirectional ring
/// with per-direction capacity `cap` (0.5 under the transceiver convention).
///
/// Routing a fraction `f` of every pair forward loads each forward link with
/// `k·f` and each backward link with `(n-k)·(1-f)`; equalizing gives
/// `f* = (n-k)/n` and
///
/// ```text
/// θ* = cap · n / (k · (n − k))
/// ```
///
/// # Panics
///
/// Panics unless `1 ≤ k < n`.
pub fn bi_ring_shift_theta(n: usize, k: usize, cap: f64) -> f64 {
    assert!(k >= 1 && k < n, "shift must satisfy 1 <= k < n");
    cap * n as f64 / (k as f64 * (n - k) as f64)
}

/// Exact forced-path `θ` for an arbitrary matching on a unidirectional ring
/// with per-link capacity `cap`, in `O(n)` via a difference array over the
/// forced arcs (equivalent to, but faster than, routing + load counting).
///
/// Returns `(theta, max_hops)`. Empty matchings return `(cap / 0 → ∞ …)` —
/// by convention `(1.0, 0)`, matching [`crate::forced`].
pub fn uni_ring_matching_theta(n: usize, matching: &Matching, cap: f64) -> (f64, usize) {
    assert_eq!(matching.n(), n, "matching dimension mismatch");
    if matching.is_empty() {
        return (1.0, 0);
    }
    // diff[i] accumulates load changes at link i (the link from node i to
    // node i+1).
    let mut diff = vec![0i64; n + 1];
    let mut max_hops = 0usize;
    for (s, d) in matching.pairs() {
        let hops = (d + n - s) % n;
        max_hops = max_hops.max(hops);
        if s + hops <= n {
            // No wraparound: links s .. s+hops-1.
            diff[s] += 1;
            diff[s + hops] -= 1;
        } else {
            // Wraparound: links s..n-1 and 0..(s+hops-n)-1.
            diff[s] += 1;
            diff[n] -= 1;
            diff[0] += 1;
            diff[s + hops - n] -= 1;
        }
    }
    let mut load = 0i64;
    let mut max_load = 0i64;
    for &d in diff.iter().take(n) {
        load += d;
        max_load = max_load.max(load);
    }
    debug_assert!(max_load > 0);
    (cap / max_load as f64, max_hops)
}

/// A sound *upper bound* on the splittable `θ` of an arbitrary matching on a
/// bidirectional ring, from the cut condition: removing the ring positions
/// `a` and `b` (a "position" is the gap between node `p-1` and node `p`)
/// disconnects the two arcs, and all demand between them must cross the
/// `2 × 2` directed links at those positions (total capacity `4·cap`).
///
/// `θ ≤ min over positions (a, b) of 4·cap / demand-separated(a, b)`.
pub fn bi_ring_cut_upper_bound(n: usize, matching: &Matching, cap: f64) -> f64 {
    assert_eq!(matching.n(), n, "matching dimension mismatch");
    let pairs: Vec<(usize, usize)> = matching.pairs().collect();
    if pairs.is_empty() {
        return f64::INFINITY;
    }
    let mut best = f64::INFINITY;
    for a in 0..n {
        for b in (a + 1)..n {
            // Arc S = nodes [a, b); arc T = the rest.
            let in_s = |v: usize| v >= a && v < b;
            let crossing = pairs.iter().filter(|&&(s, d)| in_s(s) != in_s(d)).count();
            if crossing > 0 {
                best = best.min(4.0 * cap / crossing as f64);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forced::forced_path_throughput;
    use crate::gk::{matching_commodities, max_concurrent_flow};
    use aps_topology::builders;

    #[test]
    fn closed_form_matches_forced_routing_on_uni_ring() {
        let n = 12;
        let t = builders::ring_unidirectional(n).unwrap();
        for k in 1..n {
            let m = Matching::shift(n, k).unwrap();
            let (theta_fast, ell_fast) = uni_ring_matching_theta(n, &m, 1.0);
            let (theta_slow, ell_slow) = forced_path_throughput(&t, &m).unwrap();
            assert!((theta_fast - theta_slow).abs() < 1e-12, "k={k}");
            assert_eq!(ell_fast, ell_slow);
            assert!((theta_fast - uni_ring_shift_theta(n, k, 1.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn xor_patterns_match_forced_routing() {
        let n = 16;
        let t = builders::ring_unidirectional(n).unwrap();
        for bit in 0..4 {
            let m = Matching::xor(n, 1 << bit).unwrap();
            let (theta_fast, ell_fast) = uni_ring_matching_theta(n, &m, 1.0);
            let (theta_slow, ell_slow) = forced_path_throughput(&t, &m).unwrap();
            assert!((theta_fast - theta_slow).abs() < 1e-12, "bit={bit}");
            assert_eq!(ell_fast, ell_slow);
        }
    }

    #[test]
    fn partial_matchings_match_forced_routing() {
        let n = 9;
        let t = builders::ring_unidirectional(n).unwrap();
        let m = Matching::from_pairs(n, &[(0, 4), (4, 0), (2, 3)]).unwrap();
        let (theta_fast, ell_fast) = uni_ring_matching_theta(n, &m, 1.0);
        let (theta_slow, ell_slow) = forced_path_throughput(&t, &m).unwrap();
        assert!((theta_fast - theta_slow).abs() < 1e-12);
        assert_eq!(ell_fast, ell_slow);
        assert_eq!(ell_fast, 5); // 4 → 0 wraps 5 hops.
    }

    #[test]
    fn bi_ring_closed_form_agrees_with_fptas() {
        let n = 10;
        let t = builders::ring_bidirectional(n).unwrap();
        for k in [1, 2, 4, 7, 9] {
            let m = Matching::shift(n, k).unwrap();
            let exact = bi_ring_shift_theta(n, k, 0.5);
            let r = max_concurrent_flow(&t, &matching_commodities(&m), 0.08).unwrap();
            assert!(r.lower_bound <= exact * (1.0 + 1e-9), "k={k}");
            assert!(r.upper_bound >= exact * (1.0 - 1e-9), "k={k}");
            assert!(r.lower_bound >= exact * (1.0 - 3.0 * 0.08), "k={k}");
        }
    }

    #[test]
    fn cut_bound_dominates_exact_shift_theta() {
        let n = 12;
        for k in 1..n {
            let m = Matching::shift(n, k).unwrap();
            let cut = bi_ring_cut_upper_bound(n, &m, 0.5);
            let exact = bi_ring_shift_theta(n, k, 0.5);
            assert!(
                cut >= exact - 1e-12,
                "cut bound {cut} below exact {exact} at k={k}"
            );
        }
    }

    #[test]
    fn cut_bound_is_tight_for_bisection_heavy_patterns() {
        // xor(n/2): every pair crosses the bisection, demand across any
        // balanced cut = n, so θ ≤ 4·cap/n; the exact value for this
        // pattern is 2·cap·... — at least the bound must be finite & small.
        let n = 8;
        let m = Matching::xor(n, 4).unwrap();
        let cut = bi_ring_cut_upper_bound(n, &m, 0.5);
        assert!(cut <= 4.0 * 0.5 / 4.0 + 1e-12); // ≥ 4 pairs cross any middle cut
    }

    #[test]
    fn empty_matching_conventions() {
        let m = Matching::empty(6);
        assert_eq!(uni_ring_matching_theta(6, &m, 1.0), (1.0, 0));
        assert_eq!(bi_ring_cut_upper_bound(6, &m, 0.5), f64::INFINITY);
    }
}
