//! Error types for throughput computation.

use aps_topology::TopologyError;
use std::fmt;

/// Errors produced by the concurrent-flow solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// Routing failed (some pair unreachable on the topology).
    Routing(TopologyError),
    /// The FPTAS accuracy parameter must satisfy `0 < ε < 0.5`.
    BadEpsilon(f64),
    /// The matching and topology have different node counts.
    DimensionMismatch {
        /// Topology node count.
        topology: usize,
        /// Matching node count.
        matching: usize,
    },
    /// A cache was queried with a different topology than it was built for.
    CacheTopologyMismatch {
        /// Name of the topology the cache was built for.
        expected: String,
        /// Name of the queried topology.
        got: String,
    },
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Routing(e) => write!(f, "routing failed: {e}"),
            Self::BadEpsilon(eps) => {
                write!(
                    f,
                    "FPTAS epsilon {eps} outside the supported range (0, 0.5)"
                )
            }
            Self::DimensionMismatch { topology, matching } => {
                write!(
                    f,
                    "topology has {topology} nodes but matching has {matching}"
                )
            }
            Self::CacheTopologyMismatch { expected, got } => {
                write!(f, "theta cache built for '{expected}' queried with '{got}'")
            }
        }
    }
}

impl std::error::Error for FlowError {}

impl From<TopologyError> for FlowError {
    fn from(e: TopologyError) -> Self {
        Self::Routing(e)
    }
}
