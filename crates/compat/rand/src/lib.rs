//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a minimal, deterministic replacement implementing exactly the rand 0.9 API
//! surface the codebase uses: [`StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::random`], [`Rng::random_range`], [`Rng::random_bool`] and
//! [`seq::SliceRandom::shuffle`]. The generator is SplitMix64-seeded
//! xoshiro256++, so streams are high-quality and fully reproducible from a
//! `u64` seed — which is all the workloads and property tests require.

/// Low-level source of random `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` built from the top 53 bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// xoshiro256++ — the same family real `StdRng` builds are based on; small,
/// fast and statistically strong for simulation workloads.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Types producible by [`Rng::random`].
pub trait Standard: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Debiased multiply-shift (Lemire): a uniform value in `[0, span)`,
/// `span ≥ 1`.
fn lemire<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    let mut x = rng.next_u64();
    let mut m = (x as u128) * (span as u128);
    let mut lo = m as u64;
    if lo < span {
        let t = span.wrapping_neg() % span;
        while lo < t {
            x = rng.next_u64();
            m = (x as u128) * (span as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                // i128 holds every value of every supported type, so the
                // span and the final sum are computed without overflow even
                // for signed ranges wider than half the domain.
                let span = ((self.end as i128) - (self.start as i128)) as u64;
                ((self.start as i128) + lemire(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty inclusive range in random_range");
                let span = ((e as i128) - (s as i128)) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full 64-bit domain: every u64 maps to a unique value.
                    return rng.next_u64() as $t;
                }
                ((s as i128) + lemire(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, i64, i32);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (s, e) = (*self.start(), *self.end());
        assert!(s <= e, "empty inclusive range in random_range");
        s + rng.next_f64() * (e - s)
    }
}

/// The user-facing generator methods, rand 0.9 naming.
pub trait Rng: RngCore {
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "random_bool probability out of [0,1]"
        );
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::RngCore;

    /// Slice shuffling and selection.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            use super::SampleRange;
            for i in (1..self.len()).rev() {
                let j = (0..i + 1).sample(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            use super::SampleRange;
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample(rng)])
            }
        }
    }
}

pub mod rngs {
    pub use super::StdRng;
}

pub mod prelude {
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng, StdRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_sampling_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.random_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.random_range(0.5..4.0);
            assert!((0.5..4.0).contains(&f));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }

    #[test]
    fn extreme_ranges_do_not_overflow() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            // Inclusive range ending at MAX without starting at MIN.
            let v: u64 = rng.random_range(1u64..=u64::MAX);
            assert!(v >= 1);
            // Signed ranges wider than half the domain.
            let w: i64 = rng.random_range(i64::MIN..i64::MAX);
            assert!(w < i64::MAX);
            let x: i64 = rng.random_range(i64::MIN..=i64::MAX);
            let _ = x;
            // Full unsigned domains.
            let y: u64 = rng.random_range(0u64..=u64::MAX);
            let _ = y;
            let z: u32 = rng.random_range(0u32..=u32::MAX);
            let _ = z;
        }
        // Wide signed draws actually cover both signs.
        let mut rng = StdRng::seed_from_u64(4);
        let draws: Vec<i64> = (0..64)
            .map(|_| rng.random_range(i64::MIN..i64::MAX))
            .collect();
        assert!(draws.iter().any(|&v| v < 0) && draws.iter().any(|&v| v >= 0));
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }
}
