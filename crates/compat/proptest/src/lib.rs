//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships a
//! minimal property-testing engine implementing the proptest DSL surface its
//! test suites use: the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! [`Strategy`] with [`Strategy::prop_map`] / [`Strategy::prop_flat_map`],
//! range and tuple strategies, [`collection::vec`], [`sample::subsequence`],
//! [`prelude::Just`], [`prelude::any`], and the `prop_assert*` macros.
//!
//! Differences from real proptest: no shrinking (a failing case panics with
//! its RNG seed printed so it can be replayed), and generation is driven by
//! the deterministic [`rand::StdRng`] shim. For CI determinism every run uses
//! a fixed base seed unless `PROPTEST_SEED` is set in the environment.

use rand::prelude::*;

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values of an associated type.
///
/// Real proptest separates `Strategy` from `ValueTree` to support shrinking;
/// this shim generates values directly.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy, mirroring `proptest::strategy::BoxedStrategy`.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        self.0.generate(rng)
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Result of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Marker for [`any`]: types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random::<u64>() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random::<u64>() as u8
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random::<u64>()
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random::<u64>() as usize
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random::<f64>()
    }
}

/// The canonical strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(core::marker::PhantomData)
}

pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategy!(usize, u64, u32, i64, i32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Size bounds for [`fn@vec`], mirroring `proptest::collection::SizeRange`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub min: usize,
        pub max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.min + 1 >= self.size.max_exclusive {
                self.size.min
            } else {
                rng.random_range(self.size.min..self.size.max_exclusive)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy with element strategy and size range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    use super::{StdRng, Strategy};
    use rand::prelude::*;

    pub struct Subsequence<T: Clone> {
        values: Vec<T>,
        size: super::collection::SizeRange,
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut StdRng) -> Vec<T> {
            // Clamp both bounds to the pool size so oversized size requests
            // degrade to "as many as available" instead of panicking.
            let lo = self.size.min.min(self.values.len());
            let hi = self.size.max_exclusive.min(self.values.len() + 1);
            let len = if lo + 1 >= hi {
                lo
            } else {
                rng.random_range(lo..hi)
            };
            let mut idx: Vec<usize> = (0..self.values.len()).collect();
            idx.shuffle(rng);
            idx.truncate(len);
            idx.sort_unstable();
            idx.into_iter().map(|i| self.values[i].clone()).collect()
        }
    }

    /// A random in-order subsequence of `values` with `size` elements.
    pub fn subsequence<T: Clone>(
        values: Vec<T>,
        size: impl Into<super::collection::SizeRange>,
    ) -> Subsequence<T> {
        Subsequence {
            values,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    pub use super::ProptestConfig as Config;
}

pub mod strategy {
    pub use super::{BoxedStrategy, Just, Strategy};
}

pub mod prelude {
    pub use super::{any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// The base seed for a test run: fixed for reproducibility, overridable via
/// the `PROPTEST_SEED` environment variable.
pub fn base_seed() -> u64 {
    std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5EED_CAFE_F00D_D00D)
}

/// Drives one property: generates `config.cases` inputs and runs the body.
/// Panics (with the case seed) on the first failing case.
pub fn run_property<S: Strategy>(
    name: &str,
    config: &ProptestConfig,
    strategy: &S,
    mut body: impl FnMut(S::Value),
) {
    let base = base_seed();
    for case in 0..config.cases {
        let seed = base ^ ((case as u64) << 32) ^ case as u64;
        let mut rng = StdRng::seed_from_u64(seed);
        let value = strategy.generate(&mut rng);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(value)));
        if let Err(payload) = result {
            eprintln!(
                "proptest: property `{name}` failed at case {case}/{} \
                 (replay with PROPTEST_SEED={base})",
                config.cases
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// `assert!` in a property body (no shrinking, so it simply panics).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// `assert_eq!` in a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// `assert_ne!` in a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// The proptest DSL: a block of `#[test]` functions whose arguments are drawn
/// from strategies, with an optional leading
/// `#![proptest_config(ProptestConfig::with_cases(N))]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $config:expr;) => {};
    (
        config = $config:expr;
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let strategy = ($($strat,)+);
            $crate::run_property(stringify!($name), &config, &strategy, |($($pat,)+)| $body);
        }
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (usize, usize)> {
        (1usize..10).prop_flat_map(|n| (Just(n), 0usize..10))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(n in 3usize..14, f in 0.5f64..2.0) {
            prop_assert!((3..14).contains(&n));
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn tuple_patterns_destructure((n, k) in arb_pair()) {
            prop_assert!((1..10).contains(&n));
            prop_assert!(k < 10);
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(0usize..5, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn subsequence_is_in_order(s in prop::sample::subsequence((0..20).collect::<Vec<usize>>(), 0..10)) {
            prop_assert!(s.windows(2).all(|w| w[0] < w[1]));
        }

        #[test]
        fn any_bool_generates(b in any::<bool>()) {
            let as_int = u8::from(b);
            prop_assert!(as_int <= 1);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let strat = (0u64..u64::MAX, crate::collection::vec(0usize..100, 0..50));
        let mut first = Vec::new();
        crate::run_property("det", &ProptestConfig::with_cases(10), &strat, |v| {
            first.push(format!("{v:?}"));
        });
        let mut second = Vec::new();
        crate::run_property("det", &ProptestConfig::with_cases(10), &strat, |v| {
            second.push(format!("{v:?}"));
        });
        assert_eq!(first, second);
    }
}
