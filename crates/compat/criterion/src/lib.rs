//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a minimal wall-clock benchmarking harness exposing the criterion entry
//! points its benches use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] (with `sample_size` / `finish`), the
//! [`criterion_group!`] / [`criterion_main!`] macros, and [`black_box`].
//!
//! Measurement model: each benchmark is auto-calibrated to a target time per
//! sample, then `sample_size` samples are taken and min / median / mean are
//! reported on stdout. No statistical analysis, plotting, or HTML reports —
//! numbers suitable for the `BENCH_*.json` perf trajectory and nothing more.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark timing loop handed to the closure of
/// [`Criterion::bench_function`].
pub struct Bencher {
    /// Measured sample durations, one per sample, filled by [`Bencher::iter`].
    samples: Vec<Duration>,
    sample_size: usize,
    target_sample_time: Duration,
}

impl Bencher {
    /// Times `f`, auto-calibrating iterations-per-sample so one sample takes
    /// roughly `target_sample_time`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: double iterations until a batch is long enough to time.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.target_sample_time / 4 || iters >= 1 << 24 {
                break;
            }
            iters = iters.saturating_mul(2);
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn report(id: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{id:<48} min {:>12}   median {:>12}   mean {:>12}",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean)
    );
}

/// The benchmark driver. One instance is created per [`criterion_group!`].
pub struct Criterion {
    sample_size: usize,
    /// Total wall-clock budget per benchmark, split across the samples
    /// (criterion's `measurement_time` semantics).
    measurement_time: Duration,
    /// Substring filter from the CLI (`cargo bench <filter>`); benchmarks
    /// whose id does not contain it are skipped.
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(800),
            filter: None,
        }
    }
}

impl Criterion {
    /// Applies `cargo bench`-style CLI arguments: the first non-flag
    /// argument is a substring filter on benchmark ids (flags such as
    /// `--bench` are ignored, as real criterion does).
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        id: &str,
        sample_size: usize,
        measurement_time: Duration,
        mut f: F,
    ) {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size,
            target_sample_time: measurement_time / sample_size.max(1) as u32,
        };
        f(&mut b);
        report(id, &mut b.samples);
    }

    /// Runs `f` as a named benchmark and prints its timing summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        if self.matches(id) {
            Self::run_one(id, self.sample_size, self.measurement_time, f);
        }
        self
    }

    /// Opens a named group; group settings apply to benches run through it.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            parent: self,
        }
    }
}

/// A group of benchmarks sharing overridden settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Total measurement budget for each benchmark in this group, split
    /// across the samples (order-independent with [`Self::sample_size`]).
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full_id = format!("{}/{id}", self.name);
        if self.parent.matches(&full_id) {
            Criterion::run_one(&full_id, self.sample_size, self.measurement_time, f);
        }
        self
    }

    pub fn finish(&mut self) {}
}

/// Declares a benchmark group: a function that runs each listed bench.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Each group re-reads the CLI, so `cargo bench <filter>` works;
            // flag-style arguments are accepted and ignored.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        c.bench_function("sum_0_to_99", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut g = c.benchmark_group("grouped");
        g.sample_size(5);
        g.bench_function("noop", |b| b.iter(|| black_box(1)));
        g.finish();
    }

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion {
            sample_size: 3,
            measurement_time: Duration::from_micros(150),
            filter: None,
        };
        tiny(&mut c);
    }

    criterion_group!(smoke, tiny);

    #[test]
    fn group_macro_compiles_and_runs() {
        // Keep it fast: the macro builds a default Criterion; just ensure the
        // generated fn is callable.
        let _ = smoke as fn();
    }
}
