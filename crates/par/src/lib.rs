//! # aps-par — deterministic scoped worker pool
//!
//! The sweep grids behind the paper's Figures 1–2 and the A1–A9 ablations
//! are embarrassingly parallel: every `α_r × message-size` cell (and every
//! simulator trial) is independent of every other. This crate provides the
//! one primitive all of those loops need — a parallel `map` over a slice —
//! built on `std::thread::scope` only, because the build environment has no
//! crates.io access (no rayon).
//!
//! ## Determinism
//!
//! Results are returned **in input order regardless of thread count**:
//! workers receive contiguous index chunks up front (chunked
//! index-assignment, not work-stealing), compute into their own buffers,
//! and the buffers are concatenated in chunk order after the join. The same
//! input therefore produces the *same* output `Vec` with 1, 2 or 64
//! threads — bit-identical, not just "equal up to reordering". The figure
//! harnesses rely on this to emit byte-identical JSON reports at any
//! `APS_THREADS` setting.
//!
//! ## Worker-local state
//!
//! [`Pool::map_with`] gives every worker a private state value built by an
//! `init` closure (e.g. a `ThetaCache`) and hands all states back after the
//! join so the caller can merge statistics. A worker reuses its state
//! across every item in its chunk, which is where sweep-level memoization
//! comes from.
//!
//! ## Panics
//!
//! A panic in any worker is propagated to the caller with its original
//! payload after all workers have been joined (no detached threads, no
//! poisoned state).

use std::num::NonZeroUsize;

/// Environment variable selecting the worker count, e.g. `APS_THREADS=4`.
pub const THREADS_ENV: &str = "APS_THREADS";

/// A fixed-width worker pool. Cheap to construct; threads are scoped to
/// each `map` call rather than kept alive between calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: NonZeroUsize,
}

impl Default for Pool {
    fn default() -> Self {
        Self::from_env()
    }
}

impl Pool {
    /// A pool with exactly `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: NonZeroUsize::new(threads.max(1)).expect("max(1) is non-zero"),
        }
    }

    /// A single-threaded pool: every `map` runs inline on the caller.
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// Reads [`THREADS_ENV`] (`APS_THREADS`); when unset or unparsable,
    /// falls back to [`std::thread::available_parallelism`].
    pub fn from_env() -> Self {
        Self::from_env_value(std::env::var(THREADS_ENV).ok().as_deref())
    }

    /// The pure core of [`Pool::from_env`], split out for testability:
    /// `value` is the raw `APS_THREADS` setting, if any.
    pub fn from_env_value(value: Option<&str>) -> Self {
        match value.map(str::trim).and_then(|v| v.parse::<usize>().ok()) {
            Some(t) if t >= 1 => Self::new(t),
            _ => Self::new(
                std::thread::available_parallelism()
                    .map(NonZeroUsize::get)
                    .unwrap_or(1),
            ),
        }
    }

    /// Number of workers this pool runs.
    pub fn threads(&self) -> usize {
        self.threads.get()
    }

    /// Parallel map with input-order results: `out[i] == f(i, &items[i])`.
    pub fn map<T, R>(&self, items: &[T], f: impl Fn(usize, &T) -> R + Sync) -> Vec<R>
    where
        T: Sync,
        R: Send,
    {
        self.map_with(items, || (), |(), i, t| f(i, t)).0
    }

    /// Parallel map where each worker carries private state created by
    /// `init` and reused across every item of its chunk. Returns the
    /// results in input order plus the final worker states in chunk order
    /// (one per worker that received at least one item).
    pub fn map_with<T, R, S>(
        &self,
        items: &[T],
        init: impl Fn() -> S + Sync,
        f: impl Fn(&mut S, usize, &T) -> R + Sync,
    ) -> (Vec<R>, Vec<S>)
    where
        T: Sync,
        R: Send,
        S: Send,
    {
        let n = items.len();
        if n == 0 {
            return (Vec::new(), Vec::new());
        }
        let workers = self.threads().min(n);
        if workers == 1 {
            let mut state = init();
            let out = items
                .iter()
                .enumerate()
                .map(|(i, t)| f(&mut state, i, t))
                .collect();
            return (out, vec![state]);
        }
        // Contiguous chunks assigned up front: worker w owns
        // [w·chunk, (w+1)·chunk) ∩ [0, n). Output order is therefore a
        // pure function of the input, never of scheduling. Recomputing the
        // worker count from the chunk size drops trailing workers whose
        // range would be empty (e.g. 9 items on 8 threads: chunks of 2 →
        // 5 workers, not 8), so every spawned worker — and every returned
        // state — really did receive items.
        let chunk = n.div_ceil(workers);
        let workers = n.div_ceil(chunk);
        let per_worker: Vec<(Vec<R>, S)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let lo = w * chunk;
                    let hi = ((w + 1) * chunk).min(n);
                    let init = &init;
                    let f = &f;
                    scope.spawn(move || {
                        let mut state = init();
                        let out: Vec<R> = items[lo..hi]
                            .iter()
                            .enumerate()
                            .map(|(k, t)| f(&mut state, lo + k, t))
                            .collect();
                        (out, state)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(v) => v,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
        let mut out = Vec::with_capacity(n);
        let mut states = Vec::with_capacity(per_worker.len());
        for (results, state) in per_worker {
            out.extend(results);
            states.push(state);
        }
        (out, states)
    }

    /// [`Pool::map`] for fallible work: stops at nothing (all items are
    /// evaluated) but returns the error of the **lowest input index** so
    /// the failure is as deterministic as the successes.
    ///
    /// # Errors
    ///
    /// The first (by input index) error produced by `f`.
    pub fn try_map<T, R, E>(
        &self,
        items: &[T],
        f: impl Fn(usize, &T) -> Result<R, E> + Sync,
    ) -> Result<Vec<R>, E>
    where
        T: Sync,
        R: Send,
        E: Send,
    {
        self.map(items, f).into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_preserves_input_order_across_thread_counts() {
        let items: Vec<u64> = (0..97).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = Pool::new(threads).map(&items, |_, &x| x * x + 1);
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn map_passes_the_true_input_index() {
        let items = vec!["a"; 41];
        for threads in [1, 2, 8] {
            let got = Pool::new(threads).map(&items, |i, _| i);
            assert_eq!(got, (0..41).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_with_reuses_worker_state_within_a_chunk() {
        let items: Vec<u32> = (0..16).collect();
        let (out, states) = Pool::new(4).map_with(
            &items,
            || 0usize,
            |seen, _, &x| {
                *seen += 1;
                x
            },
        );
        assert_eq!(out, items);
        assert_eq!(states.len(), 4);
        // Every item was counted by exactly one worker.
        assert_eq!(states.iter().sum::<usize>(), 16);
        // Chunked assignment: 16 items / 4 workers = 4 each.
        assert!(states.iter().all(|&s| s == 4));
    }

    #[test]
    fn more_threads_than_items_spawns_only_len_workers() {
        let items = [1, 2, 3];
        let (out, states) = Pool::new(64).map_with(&items, || (), |(), _, &x| x * 10);
        assert_eq!(out, vec![10, 20, 30]);
        assert_eq!(states.len(), 3);
    }

    #[test]
    fn uneven_chunking_never_spawns_idle_workers() {
        // 9 items on 8 threads: chunks of 2 → 5 workers, each non-empty.
        let items: Vec<usize> = (0..9).collect();
        let (out, states) = Pool::new(8).map_with(
            &items,
            || 0usize,
            |seen, _, &x| {
                *seen += 1;
                x
            },
        );
        assert_eq!(out, items);
        assert_eq!(states, vec![2, 2, 2, 2, 1]);
    }

    #[test]
    fn empty_input_is_a_no_op() {
        let items: [u8; 0] = [];
        let spawned = AtomicUsize::new(0);
        let (out, states) = Pool::new(8).map_with(
            &items,
            || spawned.fetch_add(1, Ordering::SeqCst),
            |_, _, &x| x,
        );
        assert!(out.is_empty());
        assert!(states.is_empty());
        assert_eq!(spawned.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn worker_panic_propagates_with_payload() {
        let items: Vec<usize> = (0..32).collect();
        for threads in [1, 4] {
            let err = std::panic::catch_unwind(|| {
                Pool::new(threads).map(&items, |_, &x| {
                    assert!(x != 17, "boom at {x}");
                    x
                })
            })
            .expect_err("worker panic must propagate");
            let msg = err
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_else(|| err.downcast_ref::<&str>().unwrap_or(&"?").to_string());
            assert!(msg.contains("boom at 17"), "got panic payload: {msg}");
        }
    }

    #[test]
    fn try_map_returns_the_lowest_index_error() {
        let items: Vec<i32> = (0..64).collect();
        for threads in [1, 2, 8] {
            let r: Result<Vec<i32>, String> = Pool::new(threads).try_map(&items, |i, &x| {
                if i % 10 == 3 {
                    Err(format!("bad {i}"))
                } else {
                    Ok(x)
                }
            });
            assert_eq!(r.unwrap_err(), "bad 3", "threads = {threads}");
        }
        let ok: Result<Vec<i32>, String> = Pool::new(4).try_map(&items, |_, &x| Ok(x + 1));
        assert_eq!(ok.unwrap()[0], 1);
    }

    #[test]
    fn from_env_value_parses_and_falls_back() {
        assert_eq!(Pool::from_env_value(Some("4")).threads(), 4);
        assert_eq!(Pool::from_env_value(Some(" 2 ")).threads(), 2);
        // Zero, garbage, and unset all fall back to a machine default ≥ 1.
        assert!(Pool::from_env_value(Some("0")).threads() >= 1);
        assert!(Pool::from_env_value(Some("kittens")).threads() >= 1);
        assert!(Pool::from_env_value(None).threads() >= 1);
    }

    #[test]
    fn pool_constructors_clamp() {
        assert_eq!(Pool::new(0).threads(), 1);
        assert_eq!(Pool::serial().threads(), 1);
    }
}
