//! # aps-cost — the α–β–δ cost model grounded in concurrent flow
//!
//! Observation 2 of the paper: the classic α–β cost model for collectives
//! emerges from per-step demand completion times once congestion is made
//! explicit through the maximum concurrent flow:
//!
//! ```text
//! DCT(mᵢ·Mᵢ) = α  +  δ·ℓᵢ  +  β·mᵢ·(1 / θ(G, Mᵢ))          (eq. 3)
//!              ︿      ︿            ︿
//!           latency  propagation  bandwidth × congestion
//! ```
//!
//! with `β = 1/b` (`b` = transceiver bandwidth) and total collective
//! completion time `t_c = s·α + Σ δ·ℓᵢ + β·Σ mᵢ/θᵢ` (eq. 4).
//!
//! This crate provides:
//!
//! * [`units`] — seconds/bytes/bandwidth conversions and the picosecond
//!   integer clock shared with the simulator;
//! * [`params::CostParams`] — `α`, `β`, `δ` with the paper's §3.4 defaults;
//! * [`reconfig::ReconfigModel`] — constant and per-port-affine
//!   reconfiguration delay models (`α_r`, research agenda §4);
//! * [`dct`] — per-step demand completion time with its breakdown;
//! * [`steptable`] — evaluation of `θ(G, Mᵢ)` and `ℓᵢ` for every step of a
//!   schedule (the precomputation both the optimizer and the baselines run
//!   on).

pub mod dct;
pub mod params;
pub mod reconfig;
pub mod steptable;
pub mod units;

pub use dct::DctBreakdown;
pub use params::CostParams;
pub use reconfig::ReconfigModel;
pub use steptable::{completion_time_static, step_cost_table, StepCosts};
