//! Demand completion time (eq. (3)) with its three-way breakdown.

use crate::params::CostParams;

/// The components of one step's demand completion time.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DctBreakdown {
    /// Fixed latency `α` (seconds).
    pub latency_s: f64,
    /// Propagation `δ·ℓ` (seconds).
    pub propagation_s: f64,
    /// Transmission with congestion `β·m/θ` (seconds).
    pub transmission_s: f64,
}

impl DctBreakdown {
    /// Total step time.
    pub fn total_s(&self) -> f64 {
        self.latency_s + self.propagation_s + self.transmission_s
    }

    /// Component-wise sum.
    pub fn add(&self, other: &Self) -> Self {
        Self {
            latency_s: self.latency_s + other.latency_s,
            propagation_s: self.propagation_s + other.propagation_s,
            transmission_s: self.transmission_s + other.transmission_s,
        }
    }
}

/// `DCT(m·M) = α + δ·ℓ + β·m·(1/θ)` for a step with `bytes` of data per
/// pair, hop count `ell`, and concurrent flow `theta` on the topology it
/// runs on.
///
/// # Panics
///
/// Panics (debug) on non-positive `theta` — a non-empty step always has
/// positive throughput; zero would mean an unroutable step, which the step
/// table rejects earlier.
pub fn dct(params: &CostParams, bytes: f64, theta: f64, ell: usize) -> DctBreakdown {
    debug_assert!(theta > 0.0, "non-positive concurrent flow {theta}");
    DctBreakdown {
        latency_s: params.alpha_s,
        propagation_s: params.delta_s * ell as f64,
        transmission_s: params.beta_s_per_byte * bytes / theta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::NANOS;

    #[test]
    fn matches_hand_computation() {
        // 800 Gbps, α = δ = 100 ns; 1 MiB over θ = 1/4, 4 hops.
        let p = CostParams::paper_defaults();
        let d = dct(&p, 1024.0 * 1024.0, 0.25, 4);
        assert_eq!(d.latency_s, 100.0 * NANOS);
        assert_eq!(d.propagation_s, 400.0 * NANOS);
        // 1 MiB / 100 GB/s = 10.48576 µs; × 4 congestion = 41.94304 µs.
        assert!((d.transmission_s - 4.0 * 1048576.0 / 1e11).abs() < 1e-15);
        assert!((d.total_s() - (d.latency_s + d.propagation_s + d.transmission_s)).abs() < 1e-18);
    }

    #[test]
    fn matched_step_has_unit_congestion() {
        let p = CostParams::paper_defaults();
        let d = dct(&p, 1e6, 1.0, 1);
        assert!((d.transmission_s - 1e6 / 1e11).abs() < 1e-18);
        assert_eq!(d.propagation_s, 100.0 * NANOS);
    }

    #[test]
    fn breakdown_addition() {
        let p = CostParams::paper_defaults();
        let a = dct(&p, 100.0, 1.0, 1);
        let b = dct(&p, 200.0, 0.5, 2);
        let s = a.add(&b);
        assert!((s.total_s() - (a.total_s() + b.total_s())).abs() < 1e-18);
        assert_eq!(s.latency_s, 2.0 * p.alpha_s);
    }

    #[test]
    fn zero_bytes_costs_only_latency_terms() {
        let p = CostParams::paper_defaults();
        let d = dct(&p, 0.0, 0.125, 7);
        assert_eq!(d.transmission_s, 0.0);
        assert_eq!(d.propagation_s, 700.0 * NANOS);
    }
}
