//! Cost-model parameters `α`, `β`, `δ`.

use crate::units::{gbps_to_bytes_per_sec, NANOS};
use std::fmt;

/// The α–β–δ parameters of eq. (3).
///
/// * `alpha_s` — fixed per-step overhead (startup latency, data preparation,
///   synchronization), seconds.
/// * `beta_s_per_byte` — inverse transceiver bandwidth `1/b`, seconds per
///   byte.
/// * `delta_s` — per-hop propagation delay, seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostParams {
    /// Fixed per-step latency `α` (seconds).
    pub alpha_s: f64,
    /// Inverse bandwidth `β = 1/b` (seconds per byte).
    pub beta_s_per_byte: f64,
    /// Per-hop propagation delay `δ` (seconds).
    pub delta_s: f64,
}

/// Errors from parameter validation.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamError {
    /// A parameter was negative or non-finite.
    Invalid {
        /// Which parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Invalid { name, value } => {
                write!(
                    f,
                    "cost parameter {name} = {value} must be finite and non-negative"
                )
            }
        }
    }
}

impl std::error::Error for ParamError {}

impl CostParams {
    /// Builds parameters from `α` (seconds), a line rate in Gbps, and `δ`
    /// (seconds).
    ///
    /// # Errors
    ///
    /// Rejects negative or non-finite values and non-positive bandwidth.
    pub fn new(alpha_s: f64, bandwidth_gbps: f64, delta_s: f64) -> Result<Self, ParamError> {
        let check = |name: &'static str, v: f64| -> Result<(), ParamError> {
            if !v.is_finite() || v < 0.0 {
                return Err(ParamError::Invalid { name, value: v });
            }
            Ok(())
        };
        check("alpha", alpha_s)?;
        check("delta", delta_s)?;
        if bandwidth_gbps <= 0.0 || !bandwidth_gbps.is_finite() {
            return Err(ParamError::Invalid {
                name: "bandwidth_gbps",
                value: bandwidth_gbps,
            });
        }
        Ok(Self {
            alpha_s,
            beta_s_per_byte: 1.0 / gbps_to_bytes_per_sec(bandwidth_gbps),
            delta_s,
        })
    }

    /// The paper's §3.4 evaluation defaults: `α = 100 ns`, `b = 800 Gbps`,
    /// `δ = 100 ns`.
    pub fn paper_defaults() -> Self {
        Self::new(100.0 * NANOS, 800.0, 100.0 * NANOS)
            .expect("paper defaults are valid by construction")
    }

    /// The paper's high-latency variant: `α = 10 µs` (Figures 1b and 1f).
    pub fn paper_high_alpha() -> Self {
        Self::new(10e-6, 800.0, 100.0 * NANOS).expect("valid by construction")
    }

    /// The transceiver bandwidth `b` in bytes per second.
    pub fn bandwidth_bytes_per_sec(&self) -> f64 {
        1.0 / self.beta_s_per_byte
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_3_4() {
        let p = CostParams::paper_defaults();
        assert!((p.alpha_s - 100e-9).abs() < 1e-18);
        assert!((p.delta_s - 100e-9).abs() < 1e-18);
        assert!((p.bandwidth_bytes_per_sec() - 1e11).abs() < 1.0);
        assert!((CostParams::paper_high_alpha().alpha_s - 10e-6).abs() < 1e-18);
    }

    #[test]
    fn validation() {
        assert!(CostParams::new(-1.0, 800.0, 0.0).is_err());
        assert!(CostParams::new(0.0, 0.0, 0.0).is_err());
        assert!(CostParams::new(0.0, -5.0, 0.0).is_err());
        assert!(CostParams::new(0.0, 800.0, f64::NAN).is_err());
        assert!(CostParams::new(0.0, 800.0, 0.0).is_ok());
    }
}
