//! Units: time, bytes, bandwidth.
//!
//! Analytic code works in `f64` seconds and bytes; the discrete-event
//! simulator uses an integer picosecond clock ([`Picos`]) for deterministic
//! event ordering. One picosecond resolves 0.1% of a single byte at
//! 800 Gbps, far finer than anything the model distinguishes.

/// Integer picoseconds — the simulator clock.
pub type Picos = u64;

/// Picoseconds per second.
pub const PICOS_PER_SEC: f64 = 1e12;

/// Converts (non-negative, finite) seconds to picoseconds, rounding to
/// nearest.
///
/// # Panics
///
/// Panics on negative or non-finite input — time parameters are validated
/// at construction, so a bad value here is a bug.
pub fn secs_to_picos(s: f64) -> Picos {
    assert!(s.is_finite() && s >= 0.0, "invalid time {s} s");
    (s * PICOS_PER_SEC).round() as Picos
}

/// Converts picoseconds to seconds.
pub fn picos_to_secs(p: Picos) -> f64 {
    p as f64 / PICOS_PER_SEC
}

/// One kibibyte.
pub const KIB: f64 = 1024.0;
/// One mebibyte.
pub const MIB: f64 = 1024.0 * KIB;
/// One gibibyte.
pub const GIB: f64 = 1024.0 * MIB;

/// One nanosecond in seconds.
pub const NANOS: f64 = 1e-9;
/// One microsecond in seconds.
pub const MICROS: f64 = 1e-6;
/// One millisecond in seconds.
pub const MILLIS: f64 = 1e-3;

/// Bytes per second for a line rate in gigabits per second.
pub fn gbps_to_bytes_per_sec(gbps: f64) -> f64 {
    gbps * 1e9 / 8.0
}

/// Human-readable size, e.g. `"4 MiB"`, for axis labels.
pub fn format_bytes(bytes: f64) -> String {
    if bytes >= GIB {
        format!("{:.0} GiB", bytes / GIB)
    } else if bytes >= MIB {
        format!("{:.0} MiB", bytes / MIB)
    } else if bytes >= KIB {
        format!("{:.0} KiB", bytes / KIB)
    } else {
        format!("{bytes:.0} B")
    }
}

/// Human-readable time, e.g. `"100 ns"`, `"10 µs"`, for axis labels.
pub fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.2} s")
    } else if secs >= MILLIS {
        Trim(secs / MILLIS, "ms").to_string()
    } else if secs >= MICROS {
        Trim(secs / MICROS, "µs").to_string()
    } else {
        Trim(secs / NANOS, "ns").to_string()
    }
}

/// Formats a value with trailing-zero trimming plus a unit suffix.
struct Trim(f64, &'static str);

impl std::fmt::Display for Trim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = format!("{:.3}", self.0);
        let s = s.trim_end_matches('0').trim_end_matches('.');
        write!(f, "{} {}", s, self.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_roundtrip() {
        assert_eq!(secs_to_picos(1e-9), 1000);
        assert_eq!(secs_to_picos(0.0), 0);
        assert!((picos_to_secs(secs_to_picos(123.456e-6)) - 123.456e-6).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "invalid time")]
    fn negative_time_panics() {
        secs_to_picos(-1.0);
    }

    #[test]
    fn bandwidth_conversion() {
        // 800 Gbps = 100 GB/s.
        assert_eq!(gbps_to_bytes_per_sec(800.0), 1e11);
    }

    #[test]
    fn formatting() {
        assert_eq!(format_bytes(512.0), "512 B");
        assert_eq!(format_bytes(KIB), "1 KiB");
        assert_eq!(format_bytes(4.0 * MIB), "4 MiB");
        assert_eq!(format_bytes(GIB), "1 GiB");
        assert_eq!(format_time(100.0 * NANOS), "100 ns");
        assert_eq!(format_time(10.0 * MICROS), "10 µs");
        assert_eq!(format_time(1.5 * MILLIS), "1.5 ms");
        assert_eq!(format_time(2.0), "2.00 s");
    }
}
