//! Per-step cost tables: `θ(G, Mᵢ)`, `ℓᵢ` and `mᵢ` for a whole schedule.
//!
//! This is the precomputation shared by every policy: the optimizer, the
//! static baseline (eq. (4)) and the per-step-BvN baseline all read the same
//! table. θ values are memoized per matching via
//! [`aps_flow::solver::ThetaCache`] — collectives reuse the same few
//! matchings across steps, message sizes and sweep cells.

use crate::dct::{dct, DctBreakdown};
use crate::params::CostParams;
use aps_collectives::Schedule;
use aps_flow::solver::ThetaCache;
use aps_flow::FlowError;
use aps_matrix::Matching;
use aps_topology::Topology;

/// Everything the scheduler needs to know about one step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepCosts {
    /// The step's communication pattern (kept for per-port reconfiguration
    /// accounting and for the simulator).
    pub matching: Matching,
    /// Bytes per communicating pair (`mᵢ`).
    pub bytes: f64,
    /// Concurrent flow of the pattern on the *base* topology.
    pub theta_base: f64,
    /// Propagation hop count on the *base* topology (`ℓᵢ`).
    pub ell_base: usize,
}

/// Evaluates `θ` and `ℓ` for every step of `schedule` on `topo`.
///
/// # Errors
///
/// Fails if any step is unroutable on the topology or the cache was built
/// for a different topology.
pub fn step_cost_table(
    topo: &Topology,
    schedule: &Schedule,
    cache: &mut ThetaCache,
) -> Result<Vec<StepCosts>, FlowError> {
    schedule
        .steps()
        .iter()
        .map(|s| {
            let t = cache.get(topo, &s.matching)?;
            Ok(StepCosts {
                matching: s.matching.clone(),
                bytes: s.bytes_per_pair,
                theta_base: t.theta,
                ell_base: t.max_hops,
            })
        })
        .collect()
}

/// Total completion time on the static base topology (eq. (4)):
/// `t_c = s·α + Σ δ·ℓᵢ + β·Σ mᵢ/θᵢ`. Returns the component breakdown.
pub fn completion_time_static(params: &CostParams, table: &[StepCosts]) -> DctBreakdown {
    table.iter().fold(DctBreakdown::default(), |acc, s| {
        acc.add(&dct(params, s.bytes, s.theta_base, s.ell_base))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aps_collectives::allreduce;
    use aps_flow::solver::ThroughputSolver;
    use aps_topology::builders;

    #[test]
    fn ring_allreduce_on_uni_ring_is_congestion_free() {
        let n = 8;
        let topo = builders::ring_unidirectional(n).unwrap();
        let c = allreduce::ring::build(n, 1e6).unwrap();
        let mut cache = ThetaCache::new(&topo, ThroughputSolver::ForcedPath);
        let table = step_cost_table(&topo, &c.schedule, &mut cache).unwrap();
        assert_eq!(table.len(), 2 * (n - 1));
        for s in &table {
            assert_eq!(s.theta_base, 1.0);
            assert_eq!(s.ell_base, 1);
        }
        // All steps share one matching: the cache holds a single entry.
        assert_eq!(cache.len(), 1);
        let t = completion_time_static(&CostParams::paper_defaults(), &table);
        // 14 steps × (α + δ) + β·2·(7/8)·1e6.
        let expect = 14.0 * 200e-9 + 1.75e6 / 8.0 * 8.0 / 1e11;
        assert!((t.total_s() - expect).abs() < 1e-12);
    }

    #[test]
    fn halving_doubling_on_uni_ring_suffers_congestion() {
        let n = 8;
        let topo = builders::ring_unidirectional(n).unwrap();
        let c = allreduce::halving_doubling::build(n, 8e6).unwrap();
        let mut cache = ThetaCache::new(&topo, ThroughputSolver::ForcedPath);
        let table = step_cost_table(&topo, &c.schedule, &mut cache).unwrap();
        // First RS step: xor(n/2) exchanges; on a uni ring both directions
        // wrap n/2 hops, load n/2 → θ = 2/n.
        assert!((table[0].theta_base - 2.0 / n as f64).abs() < 1e-12);
        assert_eq!(table[0].ell_base, n / 2);
        // xor masks repeat between the RS and AG phases: 3 distinct
        // matchings for log2(8) = 3 masks.
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn static_time_is_monotone_in_message_size() {
        let n = 8;
        let topo = builders::ring_unidirectional(n).unwrap();
        let params = CostParams::paper_defaults();
        let mut cache = ThetaCache::new(&topo, ThroughputSolver::ForcedPath);
        let mut last = 0.0;
        for m in [1e3, 1e5, 1e7] {
            let c = allreduce::swing::build(n, m).unwrap();
            let table = step_cost_table(&topo, &c.schedule, &mut cache).unwrap();
            let t = completion_time_static(&params, &table).total_s();
            assert!(t > last);
            last = t;
        }
    }
}
