//! Reconfiguration delay models (`α_r`).
//!
//! The paper's framework assumes a constant `α_r` per reconfiguration but
//! explicitly flags variable delays as future work: "several technologies
//! today incur a reconfiguration delay that is dependent on the number of
//! ports involved" (§3.1, §4). Both models live here so the scheduler
//! (`aps-core`), the fabric device model (`aps-fabric`) and the simulator
//! (`aps-sim`) price reconfigurations identically.

use std::fmt;

/// How long a reconfiguration takes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReconfigModel {
    /// Constant delay `α_r` regardless of scope — the paper's base model.
    Constant {
        /// The delay in seconds.
        delay_s: f64,
    },
    /// Affine in the number of ports whose circuits change:
    /// `fixed + per_port · ports_changed` (research agenda §4).
    PerPortAffine {
        /// Fixed controller overhead in seconds.
        fixed_s: f64,
        /// Additional delay per retargeted port, seconds.
        per_port_s: f64,
    },
}

/// Errors from reconfiguration model validation.
#[derive(Debug, Clone, PartialEq)]
pub struct BadReconfigModel(pub f64);

impl fmt::Display for BadReconfigModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reconfiguration delay {} must be finite and non-negative",
            self.0
        )
    }
}

impl std::error::Error for BadReconfigModel {}

impl ReconfigModel {
    /// Constant-delay model.
    ///
    /// # Errors
    ///
    /// Rejects negative or non-finite delays.
    pub fn constant(delay_s: f64) -> Result<Self, BadReconfigModel> {
        if !delay_s.is_finite() || delay_s < 0.0 {
            return Err(BadReconfigModel(delay_s));
        }
        Ok(Self::Constant { delay_s })
    }

    /// Per-port affine model.
    ///
    /// # Errors
    ///
    /// Rejects negative or non-finite components.
    pub fn per_port(fixed_s: f64, per_port_s: f64) -> Result<Self, BadReconfigModel> {
        for v in [fixed_s, per_port_s] {
            if !v.is_finite() || v < 0.0 {
                return Err(BadReconfigModel(v));
            }
        }
        Ok(Self::PerPortAffine {
            fixed_s,
            per_port_s,
        })
    }

    /// Delay (seconds) for a reconfiguration retargeting `ports_changed`
    /// ports. A zero-port "reconfiguration" costs nothing under either
    /// model: the fabric recognizes a no-op.
    pub fn delay_s(&self, ports_changed: usize) -> f64 {
        if ports_changed == 0 {
            return 0.0;
        }
        match *self {
            Self::Constant { delay_s } => delay_s,
            Self::PerPortAffine {
                fixed_s,
                per_port_s,
            } => fixed_s + per_port_s * ports_changed as f64,
        }
    }

    /// The delay assuming a full-fabric reconfiguration of `n` ports — what
    /// the paper's constant-`α_r` analysis uses ("e.g., for the total port
    /// count", §3.1).
    pub fn worst_case_delay_s(&self, n_ports: usize) -> f64 {
        self.delay_s(n_ports.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_model() {
        let m = ReconfigModel::constant(5e-6).unwrap();
        assert_eq!(m.delay_s(1), 5e-6);
        assert_eq!(m.delay_s(64), 5e-6);
        assert_eq!(m.delay_s(0), 0.0);
        assert_eq!(m.worst_case_delay_s(64), 5e-6);
    }

    #[test]
    fn per_port_model() {
        let m = ReconfigModel::per_port(1e-6, 10e-9).unwrap();
        assert_eq!(m.delay_s(0), 0.0);
        assert!((m.delay_s(1) - 1.01e-6).abs() < 1e-18);
        assert!((m.delay_s(64) - (1e-6 + 640e-9)).abs() < 1e-15);
        assert!((m.worst_case_delay_s(64) - m.delay_s(64)).abs() < 1e-18);
    }

    #[test]
    fn validation() {
        assert!(ReconfigModel::constant(-1.0).is_err());
        assert!(ReconfigModel::constant(f64::INFINITY).is_err());
        assert!(ReconfigModel::per_port(1.0, -1.0).is_err());
        assert!(ReconfigModel::per_port(f64::NAN, 0.0).is_err());
    }
}
