//! The committed plans CI runs: `pr-smoke` on every PR, `nightly` on the
//! scheduled sweep.
//!
//! Workload and controller names here are resolved by the root crate's
//! cell → `Experiment` bridge (`adaptive_photonics::experiment::run_ablation`):
//! collective families `hd-allreduce`, `ring-allreduce`, `alltoall`,
//! `broadcast` and the named `aps-sim` scenarios `mixed-collectives`,
//! `skewed-tenants`, `staggered-arrivals`; controllers are
//! `aps_core::controller::by_name` names. This module only declares the
//! plans — it stays dependency-free so plan hashes can be computed (and
//! tested) without building the simulator.

use crate::factor::{Factor, FactorKey};
use crate::kpi::{Aggregate, Check, KpiSpec, Tolerance};
use crate::plan::{AblationPlan, Sampling};

const MIB: f64 = 1024.0 * 1024.0;

/// Gates shared by both plans: structural sanity that must hold in every
/// cost regime, plus the self-consistency anchor that `static` cells —
/// which *are* their own baseline — report a speedup of exactly 1.
fn sanity_gates() -> Vec<KpiSpec> {
    vec![
        KpiSpec::all(
            "speedup_vs_static",
            Aggregate::Max,
            Check::Near {
                reference: 1.0,
                tol: Tolerance::abs(1e-9),
            },
        )
        .and_where(FactorKey::Controller, "static"),
        KpiSpec::all(
            "speedup_vs_static",
            Aggregate::Min,
            Check::Near {
                reference: 1.0,
                tol: Tolerance::abs(1e-9),
            },
        )
        .and_where(FactorKey::Controller, "static"),
        // Simulated time is strictly positive (at least 1 ps).
        KpiSpec::all(
            "completion_ps",
            Aggregate::Min,
            Check::AtLeast {
                reference: 1.0,
                tol: Tolerance::EXACT,
            },
        ),
        // A fraction stays a fraction.
        KpiSpec::all(
            "reconfig_fraction",
            Aggregate::Max,
            Check::AtMost {
                reference: 1.0,
                tol: Tolerance::EXACT,
            },
        ),
        KpiSpec::all(
            "arbitration_ps",
            Aggregate::Min,
            Check::AtLeast {
                reference: 0.0,
                tol: Tolerance::EXACT,
            },
        ),
    ]
}

/// The PR gate plan: a 12-cell grid over the two workload shapes (one
/// collective, one shared-fabric scenario), three controllers, and the
/// two α_r regimes the paper's Figure 1 contrasts. Small enough for the
/// debug-build CI job, but it still exercises the full bridge: planning,
/// simulation, multi-tenant arbitration and the static baseline.
pub fn pr_smoke() -> AblationPlan {
    let mut kpis = sanity_gates();
    // The paper's comparative claim in the cheap-reconfiguration regime:
    // the eq. (7) plan beats (or ties) the static fabric on every cell,
    // with 5% relative slack for simulated-vs-analytic divergence.
    kpis.push(
        KpiSpec::all(
            "speedup_vs_static",
            Aggregate::Min,
            Check::AtLeast {
                reference: 1.0,
                tol: Tolerance::rel(0.05),
            },
        )
        .and_where(FactorKey::Controller, "opt"),
    );
    // A lone collective never reconfigures under the static controller and
    // never arbitrates (it owns the fabric).
    kpis.push(
        KpiSpec::all(
            "reconfig_fraction",
            Aggregate::Max,
            Check::AtMost {
                reference: 0.0,
                tol: Tolerance::EXACT,
            },
        )
        .and_where(FactorKey::Controller, "static")
        .and_where(FactorKey::Workload, "hd-allreduce"),
    );
    kpis.push(
        KpiSpec::all(
            "arbitration_ps",
            Aggregate::Max,
            Check::AtMost {
                reference: 0.0,
                tol: Tolerance::EXACT,
            },
        )
        .and_where(FactorKey::Workload, "hd-allreduce"),
    );
    AblationPlan {
        name: "pr-smoke".into(),
        seed: 7,
        sampling: Sampling::FullGrid,
        factors: vec![
            Factor::names(FactorKey::Workload, ["hd-allreduce", "mixed-collectives"]),
            Factor::names(FactorKey::Controller, ["static", "opt", "greedy"]),
            Factor::nums(FactorKey::AlphaR, [1e-6, 1e-4]),
            Factor::nums(FactorKey::MessageBytes, [MIB]),
            Factor::nums(FactorKey::Ports, [16.0]),
        ],
        kpis,
    }
}

/// The nightly sweep: a 216-cell latin hypercube over every shipped
/// workload and controller, the full α_r span of the paper's regime
/// diagram (100 ns – 10 ms), three decades of message volume, and the
/// three power-of-two fabric sizes. Runs only in the release-build
/// nightly CI job; PR CI just validates its shape.
pub fn nightly() -> AblationPlan {
    let mut kpis = sanity_gates();
    // Across the whole hypercube the DP plan should on average beat the
    // static fabric; the worst single cell may trail it (the DP optimizes
    // the analytic model, not the arbitrated simulation) but never
    // catastrophically.
    kpis.push(
        KpiSpec::all(
            "speedup_vs_static",
            Aggregate::Mean,
            Check::AtLeast {
                reference: 1.0,
                tol: Tolerance::rel(0.05),
            },
        )
        .and_where(FactorKey::Controller, "opt"),
    );
    kpis.push(
        KpiSpec::all(
            "speedup_vs_static",
            Aggregate::Min,
            Check::AtLeast {
                reference: 0.5,
                tol: Tolerance::EXACT,
            },
        )
        .and_where(FactorKey::Controller, "opt"),
    );
    AblationPlan {
        name: "nightly".into(),
        seed: 2025,
        sampling: Sampling::LatinHypercube { cells: 216 },
        factors: vec![
            Factor::names(
                FactorKey::Workload,
                [
                    "hd-allreduce",
                    "ring-allreduce",
                    "alltoall",
                    "broadcast",
                    "mixed-collectives",
                    "skewed-tenants",
                    "staggered-arrivals",
                ],
            ),
            Factor::names(
                FactorKey::Controller,
                ["static", "bvn", "threshold", "opt", "greedy"],
            ),
            Factor::log_range(FactorKey::AlphaR, 1e-7, 1e-2),
            Factor::log_range(FactorKey::MessageBytes, 64.0 * 1024.0, 64.0 * MIB),
            Factor::nums(FactorKey::Ports, [8.0, 16.0, 32.0]),
        ],
        kpis,
    }
}

/// Every committed plan, in presentation order.
pub fn all() -> Vec<AblationPlan> {
    vec![pr_smoke(), nightly()]
}

/// Looks a committed plan up by name.
pub fn by_name(name: &str) -> Option<AblationPlan> {
    all().into_iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn committed_plans_sample_cleanly() {
        let smoke = pr_smoke().cells().unwrap();
        assert_eq!(smoke.len(), 12);
        let night = nightly().cells().unwrap();
        assert!(night.len() >= 200, "nightly must cover >= 200 LHS cells");
    }

    #[test]
    fn by_name_round_trips() {
        for p in all() {
            assert_eq!(by_name(&p.name).unwrap().plan_hash(), p.plan_hash());
        }
        assert!(by_name("no-such-plan").is_none());
    }

    #[test]
    fn nightly_ports_are_powers_of_two() {
        // hd-allreduce cells require 2^k ports; the Ports factor must only
        // offer levels every workload accepts.
        for cell in nightly().cells().unwrap() {
            let p = cell.num(crate::factor::FactorKey::Ports).unwrap() as usize;
            assert!(p.is_power_of_two(), "ports={p}");
        }
    }
}
