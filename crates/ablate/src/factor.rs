//! Experiment factors: what an ablation plan varies, and over which levels.
//!
//! A [`Factor`] pairs a [`FactorKey`] — a stable, registry-visible name
//! for one experimental knob (a `CostParams` field, the controller, the
//! workload, the port count) — with the [`Levels`] it ranges over. Grid
//! plans take the cartesian product of discrete level sets; latin-
//! hypercube plans stratify each factor (log-uniformly for continuous
//! ranges) and draw one deterministic sample per stratum.

use std::fmt;

/// The experimental knobs a plan can vary. The canonical names (see
/// [`FactorKey::name`]) are part of the registry schema: they appear in
/// the `factors` column of every registry row and in plan hashes, so they
/// must never change meaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FactorKey {
    /// Reconfiguration delay `α_r` in seconds (`ReconfigModel::constant`).
    AlphaR,
    /// Collective message volume in bytes (scenarios scale their mixes by
    /// this base volume).
    MessageBytes,
    /// Controller name (`aps-core::controller::by_name`); for multi-tenant
    /// scenarios, `"static"` keeps the scenario's built-in per-tenant
    /// switch policies.
    Controller,
    /// Workload name: a collective family (`hd-allreduce`,
    /// `ring-allreduce`, `alltoall`, `broadcast`) or a named multi-tenant
    /// scenario (`mixed-collectives`, `skewed-tenants`,
    /// `staggered-arrivals`).
    Workload,
    /// Fabric port count for collective workloads (scenarios carry their
    /// own fixed port count and ignore this factor).
    Ports,
    /// Fixed per-step latency `α` in seconds (`CostParams::alpha_s`).
    Alpha,
    /// Per-hop propagation delay `δ` in seconds (`CostParams::delta_s`).
    Delta,
    /// Transceiver line rate in Gbps (`CostParams::new`).
    BandwidthGbps,
}

impl FactorKey {
    /// The canonical registry name of the factor.
    pub fn name(self) -> &'static str {
        match self {
            Self::AlphaR => "alpha_r_s",
            Self::MessageBytes => "message_bytes",
            Self::Controller => "controller",
            Self::Workload => "workload",
            Self::Ports => "ports",
            Self::Alpha => "alpha_s",
            Self::Delta => "delta_s",
            Self::BandwidthGbps => "bandwidth_gbps",
        }
    }
}

impl fmt::Display for FactorKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One sampled level of a factor.
#[derive(Debug, Clone, PartialEq)]
pub enum FactorValue {
    /// A numeric level (delay, bytes, port count, …).
    Num(f64),
    /// A named level (controller or workload name).
    Name(String),
}

impl FactorValue {
    /// The canonical string form used in registry rows, factor strings
    /// and plan hashes. Numbers use Rust's locale-independent shortest
    /// round-trip display, so the same value always renders the same
    /// bytes.
    pub fn canonical(&self) -> String {
        match self {
            Self::Num(x) => {
                assert!(x.is_finite(), "non-finite factor value {x}");
                format!("{x}")
            }
            Self::Name(s) => s.clone(),
        }
    }
}

impl fmt::Display for FactorValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.canonical())
    }
}

/// The level set a factor ranges over.
#[derive(Debug, Clone, PartialEq)]
pub enum Levels {
    /// An explicit, ordered level list. Grid plans enumerate it; latin-
    /// hypercube plans spread their strata over it evenly (stratum `s` of
    /// `k` maps to level `⌊s·m/k⌋`).
    Discrete(Vec<FactorValue>),
    /// A continuous log-uniform range `[lo, hi]` (`0 < lo ≤ hi`), for
    /// scale-free knobs like delays and message sizes. Only latin-
    /// hypercube plans may sample it; a grid plan containing one fails
    /// validation.
    LogRange {
        /// Inclusive lower bound (must be positive).
        lo: f64,
        /// Inclusive upper bound.
        hi: f64,
    },
}

impl Levels {
    /// Convenience constructor: discrete numeric levels.
    pub fn nums(values: impl IntoIterator<Item = f64>) -> Self {
        Self::Discrete(values.into_iter().map(FactorValue::Num).collect())
    }

    /// Convenience constructor: discrete named levels.
    pub fn names<S: Into<String>>(values: impl IntoIterator<Item = S>) -> Self {
        Self::Discrete(
            values
                .into_iter()
                .map(|s| FactorValue::Name(s.into()))
                .collect(),
        )
    }

    /// Canonical encoding for plan hashing.
    pub(crate) fn canonical(&self) -> String {
        match self {
            Self::Discrete(levels) => {
                let mut s = String::from("discrete[");
                for (i, v) in levels.iter().enumerate() {
                    if i > 0 {
                        s.push('|');
                    }
                    s.push_str(&v.canonical());
                }
                s.push(']');
                s
            }
            Self::LogRange { lo, hi } => format!("logrange[{lo}..{hi}]"),
        }
    }
}

/// One factor of an ablation plan: a knob plus its levels.
#[derive(Debug, Clone, PartialEq)]
pub struct Factor {
    /// The knob being varied.
    pub key: FactorKey,
    /// The levels it ranges over.
    pub levels: Levels,
}

impl Factor {
    /// A factor over explicit numeric levels.
    pub fn nums(key: FactorKey, values: impl IntoIterator<Item = f64>) -> Self {
        Self {
            key,
            levels: Levels::nums(values),
        }
    }

    /// A factor over explicit named levels.
    pub fn names<S: Into<String>>(key: FactorKey, values: impl IntoIterator<Item = S>) -> Self {
        Self {
            key,
            levels: Levels::names(values),
        }
    }

    /// A factor over a continuous log-uniform range (latin-hypercube
    /// plans only).
    pub fn log_range(key: FactorKey, lo: f64, hi: f64) -> Self {
        Self {
            key,
            levels: Levels::LogRange { lo, hi },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_values_are_stable() {
        assert_eq!(FactorValue::Num(1e-6).canonical(), "0.000001");
        assert_eq!(FactorValue::Num(16.0).canonical(), "16");
        assert_eq!(FactorValue::Name("opt".into()).canonical(), "opt");
        assert_eq!(
            Levels::nums([1.0, 2.5]).canonical(),
            "discrete[1|2.5]".to_string()
        );
        assert_eq!(
            Levels::LogRange { lo: 1e-7, hi: 1e-2 }.canonical(),
            "logrange[0.0000001..0.01]"
        );
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_levels_are_rejected() {
        FactorValue::Num(f64::NAN).canonical();
    }
}
