//! Error type for plan validation, sampling and registry I/O.

use crate::factor::FactorKey;
use std::fmt;

/// Errors from ablation-plan validation, sampling, cell evaluation or
/// registry access.
///
/// Extend-only (`#[non_exhaustive]`): new plan features add variants
/// without breaking downstream matches.
#[derive(Debug)]
#[non_exhaustive]
pub enum AblateError {
    /// A grid plan contains a continuous factor; grids need explicit
    /// level lists.
    GridNeedsDiscreteLevels {
        /// The offending factor.
        factor: FactorKey,
    },
    /// A factor's discrete level list is empty.
    EmptyLevels {
        /// The offending factor.
        factor: FactorKey,
    },
    /// A continuous range is non-positive, inverted or non-finite.
    BadRange {
        /// The offending factor.
        factor: FactorKey,
        /// Lower bound as given.
        lo: f64,
        /// Upper bound as given.
        hi: f64,
    },
    /// A latin-hypercube plan asked for zero cells.
    ZeroCells,
    /// A plan declares the same factor twice.
    DuplicateFactor {
        /// The repeated factor.
        factor: FactorKey,
    },
    /// A plan declares no factors at all.
    NoFactors,
    /// A cell could not be evaluated (unknown controller/workload name,
    /// invalid derived parameters). Raised by plan-cell executors such as
    /// the `Experiment` bridge.
    Cell {
        /// Index of the failing cell.
        cell: usize,
        /// What went wrong.
        reason: String,
    },
    /// A registry file exists but does not start with the expected
    /// header, so appending to it would corrupt the column contract.
    RegistryHeaderMismatch {
        /// The file's actual first line.
        found: String,
    },
    /// A field written into a registry row would break the CSV framing
    /// (embedded comma or newline).
    UnencodableField {
        /// The offending field content.
        field: String,
    },
}

impl fmt::Display for AblateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::GridNeedsDiscreteLevels { factor } => {
                write!(
                    f,
                    "grid plans need discrete levels, but factor '{factor}' is a range"
                )
            }
            Self::EmptyLevels { factor } => {
                write!(f, "factor '{factor}' has an empty level list")
            }
            Self::BadRange { factor, lo, hi } => write!(
                f,
                "factor '{factor}' range [{lo}, {hi}] must satisfy 0 < lo <= hi and be finite"
            ),
            Self::ZeroCells => write!(f, "a latin-hypercube plan must sample at least one cell"),
            Self::DuplicateFactor { factor } => {
                write!(f, "factor '{factor}' is declared twice")
            }
            Self::NoFactors => write!(f, "a plan must declare at least one factor"),
            Self::Cell { cell, reason } => write!(f, "cell {cell} failed: {reason}"),
            Self::RegistryHeaderMismatch { found } => write!(
                f,
                "registry file has an unexpected header '{found}' — refusing to append"
            ),
            Self::UnencodableField { field } => write!(
                f,
                "registry field '{field}' contains a comma or newline and cannot be framed"
            ),
        }
    }
}

impl std::error::Error for AblateError {}
