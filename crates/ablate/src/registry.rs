//! Append-only CSV registry of KPI values, keyed by commit + plan hash.
//!
//! Long format — one row per `(commit, plan, cell, kpi)` — with a fixed
//! column order, hand-rolled in the `aps-bench::output` style (no CSV
//! crate). The file is append-only: re-running a plan at a new commit
//! adds rows, never rewrites old ones, so KPI trajectories stay
//! queryable across history with nothing more than `grep`.

use crate::error::AblateError;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// Registry schema version, bumped only when the column contract changes.
pub const REGISTRY_SCHEMA_VERSION: u32 = 1;

/// The fixed header line every registry file starts with.
pub const REGISTRY_HEADER: &str = "schema_version,commit,plan,plan_hash,cell,factors,kpi,value";

/// One registry row.
#[derive(Debug, Clone, PartialEq)]
pub struct RegistryRow {
    /// Commit identifier the run was keyed to (short hash or tag).
    pub commit: String,
    /// Plan name.
    pub plan: String,
    /// Plan content hash ([`crate::AblationPlan::plan_hash`]).
    pub plan_hash: String,
    /// Cell index within the plan's deterministic enumeration.
    pub cell: usize,
    /// Canonical `key=value;key=value` factor string for the cell.
    pub factors: String,
    /// KPI name (one of [`crate::kpi::KPI_NAMES`]).
    pub kpi: String,
    /// KPI value, rendered with Rust's shortest round-trip display so
    /// the same `f64` always serializes to the same bytes.
    pub value: f64,
}

fn checked(field: &str) -> Result<&str, AblateError> {
    if field.contains(',') || field.contains('\n') || field.contains('\r') {
        return Err(AblateError::UnencodableField {
            field: field.to_string(),
        });
    }
    Ok(field)
}

impl RegistryRow {
    /// The row's CSV line (no trailing newline).
    ///
    /// # Errors
    ///
    /// [`AblateError::UnencodableField`] when a string field contains a
    /// comma or newline — fields are never quoted, so framing must hold
    /// by construction.
    pub fn to_csv_line(&self) -> Result<String, AblateError> {
        assert!(
            self.value.is_finite(),
            "non-finite KPI value {}",
            self.value
        );
        Ok(format!(
            "{},{},{},{},{},{},{},{}",
            REGISTRY_SCHEMA_VERSION,
            checked(&self.commit)?,
            checked(&self.plan)?,
            checked(&self.plan_hash)?,
            self.cell,
            checked(&self.factors)?,
            checked(&self.kpi)?,
            self.value,
        ))
    }
}

/// Renders rows as a complete registry file (header + rows, trailing
/// newline) — the byte string compared across `APS_THREADS` settings in
/// CI.
pub fn rows_csv(rows: &[RegistryRow]) -> Result<String, AblateError> {
    let mut out = String::with_capacity(64 * (rows.len() + 1));
    out.push_str(REGISTRY_HEADER);
    out.push('\n');
    for row in rows {
        out.push_str(&row.to_csv_line()?);
        out.push('\n');
    }
    Ok(out)
}

/// Appends rows to the registry at `path`, creating it (with header) if
/// absent. Refuses to touch a file whose first line is not
/// [`REGISTRY_HEADER`] — appending under a different column contract
/// would silently corrupt every downstream query.
///
/// # Errors
///
/// [`AblateError::RegistryHeaderMismatch`] for a foreign header,
/// [`AblateError::UnencodableField`] for unframeable fields. I/O
/// failures panic with a path-qualified message, matching the
/// `aps-bench::output` writer convention.
pub fn append_rows(path: &Path, rows: &[RegistryRow]) -> Result<(), AblateError> {
    let mut body = String::new();
    for row in rows {
        body.push_str(&row.to_csv_line()?);
        body.push('\n');
    }
    let existing = fs::read_to_string(path).ok();
    match existing {
        Some(text) => {
            let first = text.lines().next().unwrap_or("");
            if first != REGISTRY_HEADER {
                return Err(AblateError::RegistryHeaderMismatch {
                    found: first.to_string(),
                });
            }
            let mut f = fs::OpenOptions::new()
                .append(true)
                .open(path)
                .unwrap_or_else(|e| panic!("open registry {}: {e}", path.display()));
            f.write_all(body.as_bytes())
                .unwrap_or_else(|e| panic!("append registry {}: {e}", path.display()));
        }
        None => {
            if let Some(dir) = path.parent() {
                if !dir.as_os_str().is_empty() {
                    fs::create_dir_all(dir)
                        .unwrap_or_else(|e| panic!("create {}: {e}", dir.display()));
                }
            }
            let mut text = String::from(REGISTRY_HEADER);
            text.push('\n');
            text.push_str(&body);
            fs::write(path, text)
                .unwrap_or_else(|e| panic!("write registry {}: {e}", path.display()));
        }
    }
    Ok(())
}

/// Parses a registry file's text back into rows, skipping the header.
/// Malformed lines are returned as [`AblateError::RegistryHeaderMismatch`]
/// only for the header; row-level damage surfaces as a `Cell` error with
/// the 0-based line number.
pub fn parse_rows(text: &str) -> Result<Vec<RegistryRow>, AblateError> {
    let mut lines = text.lines();
    let first = lines.next().unwrap_or("");
    if first != REGISTRY_HEADER {
        return Err(AblateError::RegistryHeaderMismatch {
            found: first.to_string(),
        });
    }
    let mut rows = Vec::new();
    for (i, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        let bad = |reason: &str| AblateError::Cell {
            cell: i + 1,
            reason: format!("registry line {}: {reason}: '{line}'", i + 1),
        };
        if fields.len() != 8 {
            return Err(bad("expected 8 fields"));
        }
        rows.push(RegistryRow {
            commit: fields[1].to_string(),
            plan: fields[2].to_string(),
            plan_hash: fields[3].to_string(),
            cell: fields[4].parse().map_err(|_| bad("bad cell index"))?,
            factors: fields[5].to_string(),
            kpi: fields[6].to_string(),
            value: fields[7].parse().map_err(|_| bad("bad value"))?,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(cell: usize, kpi: &str, value: f64) -> RegistryRow {
        RegistryRow {
            commit: "abc1234".into(),
            plan: "pr-smoke".into(),
            plan_hash: "00ff00ff00ff00ff".into(),
            cell,
            factors: "controller=opt;alpha_r_s=0.0001".into(),
            kpi: kpi.into(),
            value,
        }
    }

    #[test]
    fn csv_round_trips() {
        let rows = vec![
            row(0, "completion_ps", 123456.0),
            row(0, "speedup_vs_static", 1.25),
        ];
        let text = rows_csv(&rows).unwrap();
        assert!(text.starts_with(REGISTRY_HEADER));
        assert_eq!(parse_rows(&text).unwrap(), rows);
    }

    #[test]
    fn fields_with_commas_are_rejected() {
        let mut r = row(0, "completion_ps", 1.0);
        r.factors = "a,b".into();
        assert!(matches!(
            r.to_csv_line(),
            Err(AblateError::UnencodableField { .. })
        ));
    }

    #[test]
    fn append_creates_then_extends_and_guards_header() {
        let dir = std::env::temp_dir().join(format!("aps-ablate-reg-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("registry.csv");
        append_rows(&path, &[row(0, "completion_ps", 1.0)]).unwrap();
        append_rows(&path, &[row(1, "completion_ps", 2.0)]).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert_eq!(parse_rows(&text).unwrap().len(), 2);
        assert_eq!(
            text.matches(REGISTRY_HEADER).count(),
            1,
            "header written once"
        );
        fs::write(&path, "not,a,registry\n").unwrap();
        assert!(matches!(
            append_rows(&path, &[row(2, "completion_ps", 3.0)]),
            Err(AblateError::RegistryHeaderMismatch { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }
}
