//! Plan executor: maps a plan's deterministic cell list over an
//! `aps-par` pool.
//!
//! The sampler fixes the cell list single-threadedly; the pool only
//! parallelizes *evaluation*, with chunked deterministic index
//! assignment and per-cell pure work, so the result vector — and hence
//! every registry row — is bit-identical at any `APS_THREADS` setting
//! (the standing workspace constraint).

use crate::error::AblateError;
use crate::kpi::KpiValues;
use crate::plan::AblationPlan;
use crate::report::{AblationReport, CellResult};
use crate::sample::Cell;
use aps_par::Pool;

/// Samples `plan`'s cells and evaluates each with `eval` on the pool,
/// returning the gated report.
///
/// `eval` must be a pure function of the cell (no shared mutable state,
/// no iteration-order dependence); under that contract the report is
/// independent of the pool's thread count. If evaluating a cell needs a
/// nested parallel region, use [`Pool::serial`] inside `eval`.
///
/// # Errors
///
/// Plan validation/sampling errors (converted via `E: From<AblateError>`),
/// or the first `eval` error in cell-index order.
pub fn run_plan<E, F>(pool: &Pool, plan: &AblationPlan, eval: F) -> Result<AblationReport, E>
where
    E: From<AblateError> + Send,
    F: Fn(&Cell) -> Result<KpiValues, E> + Sync,
{
    let cells = plan.cells().map_err(E::from)?;
    let kpis = pool.try_map(&cells, |_, cell| eval(cell))?;
    let results = cells
        .into_iter()
        .zip(kpis)
        .map(|(cell, kpis)| CellResult { cell, kpis })
        .collect();
    Ok(AblationReport::new(plan, results))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factor::{Factor, FactorKey};
    use crate::plan::Sampling;
    use crate::registry::rows_csv;

    fn plan() -> AblationPlan {
        AblationPlan {
            name: "exec-test".into(),
            seed: 9,
            sampling: Sampling::LatinHypercube { cells: 16 },
            factors: vec![
                Factor::log_range(FactorKey::AlphaR, 1e-7, 1e-3),
                Factor::names(FactorKey::Controller, ["static", "opt", "greedy"]),
            ],
            kpis: vec![],
        }
    }

    fn eval(cell: &Cell) -> Result<KpiValues, AblateError> {
        let alpha = cell.num(FactorKey::AlphaR).unwrap();
        Ok(KpiValues {
            speedup_vs_static: 1.0 + alpha * 1e3,
            completion_ps: 1e9 * alpha,
            reconfig_fraction: 0.5,
            arbitration_ps: 0.0,
        })
    }

    #[test]
    fn report_is_thread_count_invariant() {
        let p = plan();
        let serial = run_plan(&Pool::new(1), &p, eval).unwrap();
        let parallel = run_plan(&Pool::new(3), &p, eval).unwrap();
        let a = rows_csv(&serial.registry_rows("c")).unwrap();
        let b = rows_csv(&parallel.registry_rows("c")).unwrap();
        assert_eq!(
            a, b,
            "registry rows must be bit-identical at any thread count"
        );
    }

    #[test]
    fn first_error_in_cell_order_wins() {
        let p = plan();
        let err = run_plan(&Pool::new(2), &p, |cell| {
            if cell.index >= 3 {
                Err(AblateError::Cell {
                    cell: cell.index,
                    reason: "boom".into(),
                })
            } else {
                eval(cell)
            }
        })
        .unwrap_err();
        assert!(matches!(err, AblateError::Cell { cell: 3, .. }), "{err}");
    }
}
