//! Declarative ablation registry: factor plans, deterministic sampling,
//! KPI tolerance gates, and an append-only CSV result registry.
//!
//! The paper's claims are comparative — adaptive control beats a static
//! fabric across cost regimes — so controller comparisons need *gates*,
//! not eyeballed CSV dumps. This crate turns an experiment design into
//! pure data:
//!
//! * an [`AblationPlan`] declares **factors** (cost parameters, the
//!   controller, the workload, the port count) and how to sample them —
//!   a full grid or a seeded latin hypercube ([`Sampling`]);
//! * [`AblationPlan::cells`] expands the plan into a deterministic cell
//!   list (same plan + seed ⇒ byte-identical cells, on any machine);
//! * [`run_plan`] evaluates the cells on an [`aps_par::Pool`] — chunked
//!   deterministic assignment, so reports are bit-identical at any
//!   `APS_THREADS` — producing an [`AblationReport`];
//! * each [`KpiSpec`] aggregates one KPI over a filtered cell subset and
//!   checks it against a bound with explicit [`Tolerance`] slack,
//!   yielding pass/fail [`Verdict`]s;
//! * [`AblationReport::registry_rows`] emits append-only CSV rows keyed
//!   by commit + [`AblationPlan::plan_hash`], so KPI trajectories stay
//!   queryable across history ([`registry`]).
//!
//! The crate is dependency-free (only `aps-par`): it knows nothing about
//! simulators. Executors supply the cell → KPI evaluation — the root
//! crate's `experiment::run_ablation` bridges cells onto the `Experiment`
//! builder, and `perfgate ablate` drives the committed [`plans`].
//!
//! # Example: a 2-factor plan
//!
//! ```
//! use aps_ablate::{
//!     Aggregate, AblationPlan, Check, Factor, FactorKey, KpiSpec, KpiValues, Sampling,
//!     Tolerance, run_plan,
//! };
//! use aps_par::Pool;
//!
//! let plan = AblationPlan {
//!     name: "doc-demo".into(),
//!     seed: 11,
//!     sampling: Sampling::LatinHypercube { cells: 8 },
//!     factors: vec![
//!         Factor::log_range(FactorKey::AlphaR, 1e-7, 1e-3),
//!         Factor::names(FactorKey::Controller, ["static", "opt"]),
//!     ],
//!     kpis: vec![KpiSpec::all(
//!         "speedup_vs_static",
//!         Aggregate::Min,
//!         Check::AtLeast { reference: 1.0, tol: Tolerance::rel(0.05) },
//!     )],
//! };
//!
//! // Same seed, same cells — the sampler is a pure function of the plan.
//! assert_eq!(plan.cells().unwrap(), plan.cells().unwrap());
//!
//! // Evaluate with a toy model (real runs bridge into `Experiment`).
//! let report = run_plan::<aps_ablate::AblateError, _>(&Pool::new(2), &plan, |cell| {
//!     let alpha_r = cell.num(FactorKey::AlphaR).unwrap();
//!     Ok(KpiValues {
//!         speedup_vs_static: 1.2,
//!         completion_ps: 1e12 * alpha_r,
//!         reconfig_fraction: 0.25,
//!         arbitration_ps: 0.0,
//!     })
//! })
//! .unwrap();
//! assert!(report.pass());
//! assert_eq!(report.registry_rows("demo").len(), 8 * 4);
//! ```

#![warn(missing_docs)]

mod error;
pub mod exec;
pub mod factor;
pub mod kpi;
pub mod plan;
pub mod plans;
pub mod registry;
pub mod report;
pub mod sample;

pub use error::AblateError;
pub use exec::run_plan;
pub use factor::{Factor, FactorKey, FactorValue, Levels};
pub use kpi::{Aggregate, Check, KpiSpec, KpiValues, Tolerance, Verdict, KPI_NAMES};
pub use plan::{fnv1a_64, AblationPlan, Sampling};
pub use registry::{
    append_rows, parse_rows, rows_csv, RegistryRow, REGISTRY_HEADER, REGISTRY_SCHEMA_VERSION,
};
pub use report::{AblationReport, CellResult};
pub use sample::{Cell, SplitMix64};
