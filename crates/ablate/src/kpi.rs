//! Named KPIs with tolerance gates.
//!
//! A [`KpiSpec`] aggregates one KPI over a (possibly filtered) subset of
//! a plan's cell results and checks the aggregate against a bound with
//! explicit absolute/relative slack. Verdicts are pass/fail — the whole
//! point of the registry is that controller comparisons gate CI instead
//! of being eyeballed from CSV dumps.

use crate::factor::FactorKey;
use crate::sample::Cell;
use std::fmt;

/// The KPIs every executor must compute per cell, in registry column
/// order. Stored in the registry under these exact names.
pub const KPI_NAMES: [&str; 4] = [
    "speedup_vs_static",
    "completion_ps",
    "reconfig_fraction",
    "arbitration_ps",
];

/// One cell's KPI vector, parallel to [`KPI_NAMES`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KpiValues {
    /// Static-baseline completion time divided by this cell's completion
    /// time (>1 means the cell's controller beats a never-reconfiguring
    /// fabric on the same workload).
    pub speedup_vs_static: f64,
    /// End-to-end completion time in picoseconds (last tenant finish for
    /// multi-tenant scenarios).
    pub completion_ps: f64,
    /// Fraction of total simulated time spent blocked on reconfiguration.
    pub reconfig_fraction: f64,
    /// Total arbitration wait in picoseconds (0 for single-tenant cells).
    pub arbitration_ps: f64,
}

impl KpiValues {
    /// The value of the named KPI, if `name` is one of [`KPI_NAMES`].
    pub fn get(&self, name: &str) -> Option<f64> {
        match name {
            "speedup_vs_static" => Some(self.speedup_vs_static),
            "completion_ps" => Some(self.completion_ps),
            "reconfig_fraction" => Some(self.reconfig_fraction),
            "arbitration_ps" => Some(self.arbitration_ps),
            _ => None,
        }
    }

    /// `(name, value)` pairs in registry column order.
    pub fn named(&self) -> [(&'static str, f64); 4] {
        [
            ("speedup_vs_static", self.speedup_vs_static),
            ("completion_ps", self.completion_ps),
            ("reconfig_fraction", self.reconfig_fraction),
            ("arbitration_ps", self.arbitration_ps),
        ]
    }
}

/// How a spec collapses its matching cells' KPI values to one number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// Minimum over matching cells.
    Min,
    /// Maximum over matching cells.
    Max,
    /// Arithmetic mean over matching cells.
    Mean,
}

impl fmt::Display for Aggregate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Min => "min",
            Self::Max => "max",
            Self::Mean => "mean",
        })
    }
}

/// Slack around a reference value: `abs + rel * |reference|`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Absolute slack, in the KPI's own unit.
    pub abs: f64,
    /// Relative slack as a fraction of the reference value.
    pub rel: f64,
}

impl Tolerance {
    /// No slack at all.
    pub const EXACT: Self = Self { abs: 0.0, rel: 0.0 };

    /// Purely relative slack.
    pub fn rel(rel: f64) -> Self {
        Self { abs: 0.0, rel }
    }

    /// Purely absolute slack.
    pub fn abs(abs: f64) -> Self {
        Self { abs, rel: 0.0 }
    }

    fn slack(&self, reference: f64) -> f64 {
        self.abs + self.rel * reference.abs()
    }
}

/// The bound an aggregated KPI must satisfy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Check {
    /// `aggregate >= reference - slack`.
    AtLeast {
        /// Reference lower bound.
        reference: f64,
        /// Allowed slack below the reference.
        tol: Tolerance,
    },
    /// `aggregate <= reference + slack`.
    AtMost {
        /// Reference upper bound.
        reference: f64,
        /// Allowed slack above the reference.
        tol: Tolerance,
    },
    /// `|aggregate - reference| <= slack`.
    Near {
        /// Reference target.
        reference: f64,
        /// Allowed two-sided slack.
        tol: Tolerance,
    },
}

impl Check {
    fn passes(&self, value: f64) -> bool {
        match *self {
            Self::AtLeast { reference, tol } => value >= reference - tol.slack(reference),
            Self::AtMost { reference, tol } => value <= reference + tol.slack(reference),
            Self::Near { reference, tol } => (value - reference).abs() <= tol.slack(reference),
        }
    }

    fn describe(&self) -> String {
        match *self {
            Self::AtLeast { reference, tol } => {
                format!(">= {} (tol {})", reference, tol.slack(reference))
            }
            Self::AtMost { reference, tol } => {
                format!("<= {} (tol {})", reference, tol.slack(reference))
            }
            Self::Near { reference, tol } => {
                format!("within {} of {}", tol.slack(reference), reference)
            }
        }
    }
}

/// One KPI gate: which KPI, over which cells, aggregated how, checked
/// against what.
#[derive(Debug, Clone)]
pub struct KpiSpec {
    /// KPI name (one of [`KPI_NAMES`]).
    pub kpi: &'static str,
    /// Cell filter: every `(factor, canonical-value)` pair must match
    /// (logical AND). Empty means all cells.
    pub filter: Vec<(FactorKey, String)>,
    /// How matching cells collapse to one number.
    pub aggregate: Aggregate,
    /// The bound on the aggregate.
    pub check: Check,
}

impl KpiSpec {
    /// An unfiltered spec over all cells.
    pub fn all(kpi: &'static str, aggregate: Aggregate, check: Check) -> Self {
        Self {
            kpi,
            filter: Vec::new(),
            aggregate,
            check,
        }
    }

    /// Restricts the spec to cells where `key`'s canonical value equals
    /// `value`; chainable for ANDed filters.
    pub fn and_where(mut self, key: FactorKey, value: impl Into<String>) -> Self {
        self.filter.push((key, value.into()));
        self
    }

    fn matches(&self, cell: &Cell) -> bool {
        self.filter
            .iter()
            .all(|(key, want)| cell.canonical(*key).as_deref() == Some(want.as_str()))
    }

    /// A compact, human-readable description of the gate.
    pub fn describe(&self) -> String {
        let mut s = format!("{}({})", self.aggregate, self.kpi);
        if !self.filter.is_empty() {
            s.push_str(" where ");
            for (i, (k, v)) in self.filter.iter().enumerate() {
                if i > 0 {
                    s.push_str(" & ");
                }
                s.push_str(&format!("{k}={v}"));
            }
        }
        s.push(' ');
        s.push_str(&self.check.describe());
        s
    }

    /// Evaluates the gate over `(cell, kpis)` results. An empty matching
    /// set fails: a gate that silently matches nothing would pass forever
    /// while the plan drifts out from under it.
    pub fn evaluate(&self, results: &[(Cell, KpiValues)]) -> Verdict {
        let values: Vec<f64> = results
            .iter()
            .filter(|(cell, _)| self.matches(cell))
            .filter_map(|(_, kpis)| kpis.get(self.kpi))
            .collect();
        let (value, pass, detail) = if values.is_empty() {
            (
                f64::NAN,
                false,
                "no cells matched the filter (or unknown KPI name)".to_string(),
            )
        } else {
            let agg = match self.aggregate {
                Aggregate::Min => values.iter().copied().fold(f64::INFINITY, f64::min),
                Aggregate::Max => values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                Aggregate::Mean => values.iter().sum::<f64>() / values.len() as f64,
            };
            (
                agg,
                self.check.passes(agg),
                format!("{} cells", values.len()),
            )
        };
        Verdict {
            spec: self.describe(),
            value,
            pass,
            detail,
        }
    }
}

/// The outcome of one [`KpiSpec`] gate.
#[derive(Debug, Clone)]
pub struct Verdict {
    /// Human-readable gate description (from [`KpiSpec::describe`]).
    pub spec: String,
    /// The aggregated KPI value (NaN when no cells matched).
    pub value: f64,
    /// Whether the gate passed.
    pub pass: bool,
    /// Supporting detail (matched-cell count or failure reason).
    pub detail: String,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} = {} [{}]",
            if self.pass { "PASS" } else { "FAIL" },
            self.spec,
            self.value,
            self.detail
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factor::FactorValue;

    fn cell(i: usize, controller: &str) -> Cell {
        Cell {
            index: i,
            values: vec![(
                FactorKey::Controller,
                FactorValue::Name(controller.to_string()),
            )],
        }
    }

    fn kpis(speedup: f64) -> KpiValues {
        KpiValues {
            speedup_vs_static: speedup,
            completion_ps: 100.0,
            reconfig_fraction: 0.1,
            arbitration_ps: 0.0,
        }
    }

    #[test]
    fn filters_aggregate_and_check() {
        let results = vec![
            (cell(0, "opt"), kpis(1.4)),
            (cell(1, "opt"), kpis(1.2)),
            (cell(2, "static"), kpis(1.0)),
        ];
        let spec = KpiSpec::all(
            "speedup_vs_static",
            Aggregate::Min,
            Check::AtLeast {
                reference: 1.1,
                tol: Tolerance::EXACT,
            },
        )
        .and_where(FactorKey::Controller, "opt");
        let v = spec.evaluate(&results);
        assert!(v.pass, "{v}");
        assert!((v.value - 1.2).abs() < 1e-12);
        // Without the filter the static cell drags min below the gate.
        let all = KpiSpec::all(
            "speedup_vs_static",
            Aggregate::Min,
            Check::AtLeast {
                reference: 1.1,
                tol: Tolerance::EXACT,
            },
        );
        assert!(!all.evaluate(&results).pass);
    }

    #[test]
    fn tolerance_widens_the_bound() {
        let results = vec![(cell(0, "opt"), kpis(0.97))];
        let tight = KpiSpec::all(
            "speedup_vs_static",
            Aggregate::Mean,
            Check::AtLeast {
                reference: 1.0,
                tol: Tolerance::EXACT,
            },
        );
        assert!(!tight.evaluate(&results).pass);
        let slack = KpiSpec::all(
            "speedup_vs_static",
            Aggregate::Mean,
            Check::AtLeast {
                reference: 1.0,
                tol: Tolerance::rel(0.05),
            },
        );
        assert!(slack.evaluate(&results).pass);
    }

    #[test]
    fn empty_match_fails() {
        let results = vec![(cell(0, "opt"), kpis(1.5))];
        let spec = KpiSpec::all(
            "speedup_vs_static",
            Aggregate::Max,
            Check::AtLeast {
                reference: 0.0,
                tol: Tolerance::EXACT,
            },
        )
        .and_where(FactorKey::Controller, "no-such-controller");
        let v = spec.evaluate(&results);
        assert!(!v.pass);
        assert!(v.value.is_nan());
    }

    #[test]
    fn near_and_atmost_checks() {
        let results = vec![(cell(0, "static"), kpis(1.0))];
        let near = KpiSpec::all(
            "reconfig_fraction",
            Aggregate::Max,
            Check::Near {
                reference: 0.1,
                tol: Tolerance::abs(0.01),
            },
        );
        assert!(near.evaluate(&results).pass);
        let atmost = KpiSpec::all(
            "completion_ps",
            Aggregate::Max,
            Check::AtMost {
                reference: 50.0,
                tol: Tolerance::rel(0.1),
            },
        );
        assert!(!atmost.evaluate(&results).pass);
    }
}
