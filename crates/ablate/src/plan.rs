//! Ablation plans: named factor sets plus a sampling strategy, with a
//! stable content hash for the registry.

use crate::error::AblateError;
use crate::factor::Factor;
use crate::kpi::KpiSpec;
use crate::sample::{grid_cells, lhs_cells, Cell};

/// How a plan turns its factors into concrete cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Sampling {
    /// Cartesian product of every factor's discrete levels.
    FullGrid,
    /// Seeded latin hypercube over `cells` strata per factor.
    LatinHypercube {
        /// Number of cells (= strata per factor) to sample.
        cells: usize,
    },
}

/// A declarative ablation plan: what to vary, how to sample it, and
/// which KPI gates the resulting cell set must pass.
///
/// Plans are pure data. Sampling ([`AblationPlan::cells`]) is a
/// deterministic function of `(factors, sampling, seed)`; evaluation is
/// delegated to an executor (see [`crate::exec::run_plan`]) so this
/// crate stays free of simulator dependencies.
#[derive(Debug, Clone)]
pub struct AblationPlan {
    /// Registry-visible plan name (e.g. `"pr-smoke"`, `"nightly"`).
    pub name: String,
    /// Seed for latin-hypercube draws (ignored by grids, but still part
    /// of the plan hash).
    pub seed: u64,
    /// Sampling strategy.
    pub sampling: Sampling,
    /// Factors in declaration order — the order of the `factors` column
    /// in registry rows.
    pub factors: Vec<Factor>,
    /// KPI tolerance gates evaluated over the full cell result set.
    pub kpis: Vec<KpiSpec>,
}

impl AblationPlan {
    /// Validates the factor set (non-empty, no duplicate keys) and
    /// samples the plan's deterministic cell list.
    ///
    /// # Errors
    ///
    /// [`AblateError::NoFactors`], [`AblateError::DuplicateFactor`], plus
    /// the sampler errors documented on [`grid_cells`] and [`lhs_cells`].
    pub fn cells(&self) -> Result<Vec<Cell>, AblateError> {
        if self.factors.is_empty() {
            return Err(AblateError::NoFactors);
        }
        for (i, f) in self.factors.iter().enumerate() {
            if self.factors[..i].iter().any(|g| g.key == f.key) {
                return Err(AblateError::DuplicateFactor { factor: f.key });
            }
        }
        match self.sampling {
            Sampling::FullGrid => grid_cells(&self.factors),
            Sampling::LatinHypercube { cells } => lhs_cells(&self.factors, self.seed, cells),
        }
    }

    /// A stable 64-bit FNV-1a hash of the plan's content (name, seed,
    /// sampling, factors — not KPI gates, which may be retuned without
    /// invalidating stored results), rendered as 16 lowercase hex digits
    /// for the registry's `plan_hash` column.
    ///
    /// Two registry rows with equal `plan` + `plan_hash` were sampled
    /// from byte-identical cell lists, so their KPI values are directly
    /// comparable across commits.
    pub fn plan_hash(&self) -> String {
        let mut s = String::new();
        s.push_str(&self.name);
        s.push('\n');
        s.push_str(&format!("seed={}\n", self.seed));
        match self.sampling {
            Sampling::FullGrid => s.push_str("sampling=grid\n"),
            Sampling::LatinHypercube { cells } => {
                s.push_str(&format!("sampling=lhs[{cells}]\n"));
            }
        }
        for f in &self.factors {
            s.push_str(f.key.name());
            s.push('=');
            s.push_str(&f.levels.canonical());
            s.push('\n');
        }
        format!("{:016x}", fnv1a_64(s.as_bytes()))
    }
}

/// FNV-1a 64-bit over a byte slice — the same hash family `aps-replay`
/// uses for state digests; hand-rolled so the registry key needs no
/// external hasher.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factor::FactorKey;

    fn plan() -> AblationPlan {
        AblationPlan {
            name: "t".into(),
            seed: 1,
            sampling: Sampling::LatinHypercube { cells: 8 },
            factors: vec![
                Factor::log_range(FactorKey::AlphaR, 1e-7, 1e-2),
                Factor::names(FactorKey::Controller, ["static", "opt"]),
            ],
            kpis: vec![],
        }
    }

    #[test]
    fn hash_is_stable_and_content_sensitive() {
        let p = plan();
        assert_eq!(p.plan_hash(), p.plan_hash());
        assert_eq!(p.plan_hash().len(), 16);
        let mut q = plan();
        q.seed = 2;
        assert_ne!(p.plan_hash(), q.plan_hash());
        let mut r = plan();
        r.factors.pop();
        assert_ne!(p.plan_hash(), r.plan_hash());
    }

    #[test]
    fn validation_catches_empty_and_duplicate_factors() {
        let mut p = plan();
        p.factors.clear();
        assert!(matches!(p.cells(), Err(AblateError::NoFactors)));
        let mut q = plan();
        q.factors
            .push(Factor::log_range(FactorKey::AlphaR, 1e-6, 1e-3));
        assert!(matches!(
            q.cells(),
            Err(AblateError::DuplicateFactor {
                factor: FactorKey::AlphaR
            })
        ));
    }

    #[test]
    fn fnv_reference_value() {
        // FNV-1a 64 of "a" per the published test vectors.
        assert_eq!(fnv1a_64(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a_64(b""), 0xCBF2_9CE4_8422_2325);
    }
}
