//! Deterministic cell sampling: full grids and seeded latin hypercubes.
//!
//! Both samplers are pure functions of the plan (factors + seed + cell
//! count): they run single-threaded, draw from a hand-rolled
//! [SplitMix64](https://prng.di.unimi.it/splitmix64.c) stream in a fixed
//! order, and therefore produce the same cell list on every machine and
//! at every `APS_THREADS` setting — the executor only parallelizes the
//! *evaluation* of an already-fixed cell list.

use crate::error::AblateError;
use crate::factor::{Factor, FactorKey, FactorValue, Levels};

/// One sampled plan cell: an assignment of every factor to a concrete
/// level, in the plan's factor order.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Position in the plan's deterministic cell enumeration.
    pub index: usize,
    /// `(factor, level)` assignments, one per plan factor, in plan order.
    pub values: Vec<(FactorKey, FactorValue)>,
}

impl Cell {
    /// The numeric level assigned to `key`, if the cell carries one.
    pub fn num(&self, key: FactorKey) -> Option<f64> {
        self.values.iter().find_map(|(k, v)| match v {
            FactorValue::Num(x) if *k == key => Some(*x),
            _ => None,
        })
    }

    /// The named level assigned to `key`, if the cell carries one.
    pub fn name(&self, key: FactorKey) -> Option<&str> {
        self.values.iter().find_map(|(k, v)| match v {
            FactorValue::Name(s) if *k == key => Some(s.as_str()),
            _ => None,
        })
    }

    /// The canonical level string assigned to `key`, if present (numeric
    /// and named levels alike).
    pub fn canonical(&self, key: FactorKey) -> Option<String> {
        self.values
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v.canonical())
    }

    /// The cell's canonical `key=value;key=value` factor string — the
    /// `factors` column of its registry rows.
    pub fn factors_string(&self) -> String {
        let mut s = String::new();
        for (i, (k, v)) in self.values.iter().enumerate() {
            if i > 0 {
                s.push(';');
            }
            s.push_str(k.name());
            s.push('=');
            s.push_str(&v.canonical());
        }
        s
    }
}

/// SplitMix64: the minimal deterministic generator behind latin-hypercube
/// jitter and stratum permutations. Hand-rolled (no crates.io access) and
/// fully specified, so sampled plans are reproducible forever.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the stream.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw from `[0, 1)` (53 mantissa bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform index from `0..bound` (`bound > 0`) via Lemire-style
    /// rejection-free scaling — deterministic and unbiased enough for
    /// stratum shuffling.
    fn next_index(&mut self, bound: usize) -> usize {
        ((self.next_u64() >> 11) as usize) % bound
    }
}

/// Full-grid enumeration: the cartesian product of every factor's
/// discrete levels, row-major with the *last* factor fastest.
///
/// # Errors
///
/// [`AblateError::GridNeedsDiscreteLevels`] when a factor carries a
/// continuous range, [`AblateError::EmptyLevels`] when a level list is
/// empty.
pub fn grid_cells(factors: &[Factor]) -> Result<Vec<Cell>, AblateError> {
    let mut level_sets: Vec<(&Factor, &[FactorValue])> = Vec::with_capacity(factors.len());
    for f in factors {
        match &f.levels {
            Levels::Discrete(levels) if levels.is_empty() => {
                return Err(AblateError::EmptyLevels { factor: f.key });
            }
            Levels::Discrete(levels) => level_sets.push((f, levels)),
            Levels::LogRange { .. } => {
                return Err(AblateError::GridNeedsDiscreteLevels { factor: f.key });
            }
        }
    }
    let total: usize = level_sets.iter().map(|(_, l)| l.len()).product();
    let mut cells = Vec::with_capacity(total);
    for index in 0..total {
        let mut rem = index;
        let mut values = Vec::with_capacity(level_sets.len());
        for (f, levels) in level_sets.iter().rev() {
            values.push((f.key, levels[rem % levels.len()].clone()));
            rem /= levels.len();
        }
        values.reverse();
        cells.push(Cell { index, values });
    }
    Ok(cells)
}

/// Seeded latin-hypercube sampling of `k` cells: each factor's domain is
/// cut into `k` strata and every stratum is used **exactly once** across
/// the cell set (the defining LHS property), with an independent seeded
/// permutation per factor pairing strata into cells.
///
/// * Continuous ([`Levels::LogRange`]) factors stratify log-uniformly;
///   the sample point inside stratum `s` is jittered by a seeded uniform
///   draw, so repeated runs of the same `(plan, seed)` reproduce the
///   exact `f64` levels.
/// * Discrete factors map stratum `s` to level `⌊s·m/k⌋` — each level is
///   hit `⌊k/m⌋` or `⌈k/m⌉` times when `k ≥ m`.
///
/// # Errors
///
/// [`AblateError::ZeroCells`] when `k == 0`, [`AblateError::EmptyLevels`]
/// when a discrete level list is empty, [`AblateError::BadRange`] for a
/// non-positive or inverted continuous range.
pub fn lhs_cells(factors: &[Factor], seed: u64, k: usize) -> Result<Vec<Cell>, AblateError> {
    if k == 0 {
        return Err(AblateError::ZeroCells);
    }
    for f in factors {
        match &f.levels {
            Levels::Discrete(levels) if levels.is_empty() => {
                return Err(AblateError::EmptyLevels { factor: f.key });
            }
            Levels::LogRange { lo, hi }
                if !(lo.is_finite() && hi.is_finite() && *lo > 0.0 && lo <= hi) =>
            {
                return Err(AblateError::BadRange {
                    factor: f.key,
                    lo: *lo,
                    hi: *hi,
                });
            }
            _ => {}
        }
    }

    let mut rng = SplitMix64::new(seed);
    // Draw order is fixed: per factor, first its stratum permutation, then
    // its k jitters — so adding cells or factors never perturbs the draws
    // of earlier factors within the same plan shape.
    let mut assignments: Vec<Vec<FactorValue>> = Vec::with_capacity(factors.len());
    for f in factors {
        let mut strata: Vec<usize> = (0..k).collect();
        // Fisher–Yates with the deterministic stream.
        for i in (1..k).rev() {
            strata.swap(i, rng.next_index(i + 1));
        }
        let column = match &f.levels {
            Levels::Discrete(levels) => {
                let m = levels.len();
                strata
                    .iter()
                    .map(|&s| levels[s * m / k].clone())
                    .collect::<Vec<_>>()
            }
            Levels::LogRange { lo, hi } => {
                let ratio = hi / lo;
                strata
                    .iter()
                    .map(|&s| {
                        let jitter = rng.next_f64();
                        let pos = (s as f64 + jitter) / k as f64;
                        FactorValue::Num(lo * ratio.powf(pos))
                    })
                    .collect::<Vec<_>>()
            }
        };
        assignments.push(column);
    }

    Ok((0..k)
        .map(|index| Cell {
            index,
            values: factors
                .iter()
                .zip(&assignments)
                .map(|(f, column)| (f.key, column[index].clone()))
                .collect(),
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_factors() -> Vec<Factor> {
        vec![
            Factor::log_range(FactorKey::AlphaR, 1e-7, 1e-2),
            Factor::names(FactorKey::Controller, ["static", "opt", "greedy"]),
        ]
    }

    #[test]
    fn grid_is_the_cartesian_product_in_row_major_order() {
        let factors = vec![
            Factor::nums(FactorKey::Ports, [8.0, 16.0]),
            Factor::names(FactorKey::Controller, ["static", "opt"]),
        ];
        let cells = grid_cells(&factors).unwrap();
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0].factors_string(), "ports=8;controller=static");
        assert_eq!(cells[1].factors_string(), "ports=8;controller=opt");
        assert_eq!(cells[3].factors_string(), "ports=16;controller=opt");
        assert_eq!(cells[2].index, 2);
    }

    #[test]
    fn grid_rejects_continuous_factors_and_empty_levels() {
        assert!(matches!(
            grid_cells(&two_factors()),
            Err(AblateError::GridNeedsDiscreteLevels { .. })
        ));
        let empty = vec![Factor::nums(FactorKey::Ports, [])];
        assert!(matches!(
            grid_cells(&empty),
            Err(AblateError::EmptyLevels { .. })
        ));
    }

    #[test]
    fn lhs_is_deterministic_in_the_seed() {
        let a = lhs_cells(&two_factors(), 42, 17).unwrap();
        let b = lhs_cells(&two_factors(), 42, 17).unwrap();
        assert_eq!(a, b);
        let c = lhs_cells(&two_factors(), 43, 17).unwrap();
        assert_ne!(a, c, "different seeds must permute differently");
    }

    #[test]
    fn lhs_uses_every_stratum_exactly_once() {
        let k = 24;
        let factors = two_factors();
        let cells = lhs_cells(&factors, 7, k).unwrap();
        assert_eq!(cells.len(), k);
        // Continuous factor: map each sample back to its stratum; all k
        // strata must appear exactly once.
        let (lo, hi) = (1e-7, 1e-2);
        let mut seen = vec![false; k];
        for cell in &cells {
            let v = cell.num(FactorKey::AlphaR).unwrap();
            assert!((lo..=hi).contains(&v));
            let pos = (v / lo).ln() / (hi / lo).ln();
            let stratum = ((pos * k as f64) as usize).min(k - 1);
            assert!(!seen[stratum], "stratum {stratum} sampled twice");
            seen[stratum] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // Discrete factor with m levels: balanced to ⌊k/m⌋..⌈k/m⌉.
        let mut counts = [0usize; 3];
        for cell in &cells {
            let name = cell.name(FactorKey::Controller).unwrap();
            let i = ["static", "opt", "greedy"]
                .iter()
                .position(|&c| c == name)
                .unwrap();
            counts[i] += 1;
        }
        assert_eq!(counts, [8, 8, 8]);
    }

    #[test]
    fn lhs_validates_inputs() {
        assert!(matches!(
            lhs_cells(&two_factors(), 1, 0),
            Err(AblateError::ZeroCells)
        ));
        let bad = vec![Factor::log_range(FactorKey::AlphaR, 0.0, 1.0)];
        assert!(matches!(
            lhs_cells(&bad, 1, 4),
            Err(AblateError::BadRange { .. })
        ));
    }

    #[test]
    fn splitmix_reference_values() {
        // First outputs for seed 0 (reference implementation).
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        let u = SplitMix64::new(1).next_f64();
        assert!((0.0..1.0).contains(&u));
    }
}
