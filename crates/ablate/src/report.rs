//! Plan results: per-cell KPI vectors, gate verdicts, and registry rows.

use crate::kpi::{KpiValues, Verdict};
use crate::plan::AblationPlan;
use crate::registry::RegistryRow;
use crate::sample::Cell;

/// One evaluated plan cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The sampled cell.
    pub cell: Cell,
    /// Its KPI vector.
    pub kpis: KpiValues,
}

/// A fully evaluated plan: every cell's KPIs plus every gate's verdict.
#[derive(Debug, Clone)]
pub struct AblationReport {
    /// Plan name.
    pub plan: String,
    /// Plan content hash, for the registry key.
    pub plan_hash: String,
    /// Per-cell results in plan cell order.
    pub results: Vec<CellResult>,
    /// Gate verdicts in plan KPI-spec order.
    pub verdicts: Vec<Verdict>,
}

impl AblationReport {
    /// Builds the report: records results and evaluates every KPI gate
    /// declared by the plan.
    pub fn new(plan: &AblationPlan, results: Vec<CellResult>) -> Self {
        let pairs: Vec<(Cell, KpiValues)> =
            results.iter().map(|r| (r.cell.clone(), r.kpis)).collect();
        let verdicts = plan.kpis.iter().map(|spec| spec.evaluate(&pairs)).collect();
        Self {
            plan: plan.name.clone(),
            plan_hash: plan.plan_hash(),
            results,
            verdicts,
        }
    }

    /// True when every gate passed (vacuously true for gate-less plans).
    pub fn pass(&self) -> bool {
        self.verdicts.iter().all(|v| v.pass)
    }

    /// The report's registry rows keyed to `commit`: one row per cell
    /// per KPI, cells in plan order, KPIs in [`crate::kpi::KPI_NAMES`]
    /// order — a deterministic function of the results, so two runs with
    /// identical results emit byte-identical rows.
    pub fn registry_rows(&self, commit: &str) -> Vec<RegistryRow> {
        let mut rows = Vec::with_capacity(self.results.len() * 4);
        for r in &self.results {
            for (kpi, value) in r.kpis.named() {
                rows.push(RegistryRow {
                    commit: commit.to_string(),
                    plan: self.plan.clone(),
                    plan_hash: self.plan_hash.clone(),
                    cell: r.cell.index,
                    factors: r.cell.factors_string(),
                    kpi: kpi.to_string(),
                    value,
                });
            }
        }
        rows
    }

    /// A human-readable summary: one line per verdict, then a pass/fail
    /// trailer. Cells are summarized, not dumped — the registry holds
    /// the full data.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "plan {} (hash {}): {} cells, {} gates\n",
            self.plan,
            self.plan_hash,
            self.results.len(),
            self.verdicts.len()
        );
        for v in &self.verdicts {
            out.push_str(&format!("  {v}\n"));
        }
        out.push_str(if self.pass() {
            "ABLATION PASS\n"
        } else {
            "ABLATION FAIL\n"
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factor::{Factor, FactorKey};
    use crate::kpi::{Aggregate, Check, KpiSpec, Tolerance};
    use crate::plan::{AblationPlan, Sampling};

    fn tiny_plan() -> AblationPlan {
        AblationPlan {
            name: "tiny".into(),
            seed: 0,
            sampling: Sampling::FullGrid,
            factors: vec![Factor::names(FactorKey::Controller, ["static", "opt"])],
            kpis: vec![KpiSpec::all(
                "speedup_vs_static",
                Aggregate::Min,
                Check::AtLeast {
                    reference: 1.0,
                    tol: Tolerance::rel(0.05),
                },
            )],
        }
    }

    fn eval(cell: &Cell) -> KpiValues {
        let speedup = if cell.name(FactorKey::Controller) == Some("opt") {
            1.3
        } else {
            1.0
        };
        KpiValues {
            speedup_vs_static: speedup,
            completion_ps: 100.0,
            reconfig_fraction: 0.0,
            arbitration_ps: 0.0,
        }
    }

    #[test]
    fn report_rows_and_verdicts() {
        let plan = tiny_plan();
        let results: Vec<CellResult> = plan
            .cells()
            .unwrap()
            .into_iter()
            .map(|cell| {
                let kpis = eval(&cell);
                CellResult { cell, kpis }
            })
            .collect();
        let report = AblationReport::new(&plan, results);
        assert!(report.pass(), "{}", report.render_text());
        let rows = report.registry_rows("deadbeef");
        assert_eq!(rows.len(), 2 * 4);
        assert_eq!(rows[0].kpi, "speedup_vs_static");
        assert_eq!(rows[0].factors, "controller=static");
        assert!(rows.iter().all(|r| r.plan_hash == report.plan_hash));
        assert!(report.render_text().contains("ABLATION PASS"));
    }
}
