//! A small dense bit-set over `{0, …, n-1}`.
//!
//! Used by the collective-semantics verifier in `aps-collectives` to track
//! which GPUs' contributions have been folded into each data chunk. `n` is a
//! GPU count (tens to a few thousand), so a `Vec<u64>` of words is the right
//! representation: union and equality are a handful of word operations.

/// A fixed-universe bit-set.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    n: usize,
    words: Vec<u64>,
}

impl BitSet {
    /// An empty set over a universe of `n` elements.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// The singleton `{i}`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    pub fn singleton(n: usize, i: usize) -> Self {
        let mut s = Self::new(n);
        s.insert(i);
        s
    }

    /// The full universe `{0, …, n-1}`.
    pub fn full(n: usize) -> Self {
        let mut s = Self::new(n);
        for w in &mut s.words {
            *w = u64::MAX;
        }
        let tail = n % 64;
        if tail != 0 {
            if let Some(last) = s.words.last_mut() {
                *last = (1u64 << tail) - 1;
            }
        }
        s
    }

    /// Universe size.
    pub fn universe(&self) -> usize {
        self.n
    }

    /// Inserts `i`. Returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.n, "bit {i} out of universe {}", self.n);
        let (w, b) = (i / 64, i % 64);
        let newly = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        newly
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.n {
            return false;
        }
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// In-place union with `other`.
    ///
    /// # Panics
    ///
    /// Panics on universe mismatch.
    pub fn union_with(&mut self, other: &Self) {
        assert_eq!(self.n, other.n, "bitset universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Number of elements present.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` when no element is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `true` when every element of the universe is present.
    pub fn is_full(&self) -> bool {
        self.len() == self.n
    }

    /// `true` when every element of `self` is also in `other`.
    pub fn is_subset_of(&self, other: &Self) -> bool {
        assert_eq!(self.n, other.n, "bitset universe mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterator over the elements in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.n).filter(move |&i| self.contains(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut s = BitSet::new(100);
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(99));
        assert!(!s.insert(64));
        assert_eq!(s.len(), 4);
        assert!(s.contains(63) && s.contains(64));
        assert!(!s.contains(62));
        assert!(!s.contains(1000));
    }

    #[test]
    fn full_has_exact_tail() {
        for n in [1, 63, 64, 65, 128, 130] {
            let s = BitSet::full(n);
            assert_eq!(s.len(), n, "n={n}");
            assert!(s.is_full());
            assert!(!s.contains(n));
        }
    }

    #[test]
    fn union_and_subset() {
        let mut a = BitSet::singleton(10, 1);
        let b = BitSet::singleton(10, 7);
        assert!(!b.is_subset_of(&a));
        a.union_with(&b);
        assert!(a.contains(1) && a.contains(7));
        assert!(b.is_subset_of(&a));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 7]);
    }

    #[test]
    fn empty_properties() {
        let s = BitSet::new(5);
        assert!(s.is_empty());
        assert!(!s.is_full());
        assert_eq!(s.len(), 0);
        assert!(s.is_subset_of(&BitSet::full(5)));
    }

    #[test]
    #[should_panic(expected = "universe")]
    fn union_universe_mismatch_panics() {
        let mut a = BitSet::new(5);
        a.union_with(&BitSet::new(6));
    }
}
