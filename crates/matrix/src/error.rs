//! Error types for matching and matrix construction.

use std::fmt;

/// Errors produced while constructing or decomposing matchings and demand
/// matrices.
#[derive(Debug, Clone, PartialEq)]
pub enum MatrixError {
    /// An endpoint index was `>= n`.
    EndpointOutOfRange {
        /// The offending endpoint.
        endpoint: usize,
        /// The domain size.
        n: usize,
    },
    /// Two pairs shared a sender (a node may send to at most one peer).
    DuplicateSender(usize),
    /// Two pairs shared a receiver (a node may receive from at most one peer).
    DuplicateReceiver(usize),
    /// A pair connected a node to itself. Self-circuits carry no traffic and
    /// are rejected to keep the matching algebra unambiguous.
    SelfLoop(usize),
    /// A cyclic shift of 0 (mod n) is the identity and therefore not a
    /// communication pattern.
    IdentityShift {
        /// Requested shift amount.
        shift: usize,
        /// The domain size.
        n: usize,
    },
    /// XOR-based patterns require a power-of-two domain.
    NotPowerOfTwo(usize),
    /// The XOR mask was 0 or `>= n`.
    BadXorMask {
        /// Requested mask.
        mask: usize,
        /// The domain size.
        n: usize,
    },
    /// Two objects of different dimension were combined.
    DimensionMismatch {
        /// Left-hand dimension.
        left: usize,
        /// Right-hand dimension.
        right: usize,
    },
    /// A demand entry was negative.
    NegativeDemand {
        /// Row (sender).
        src: usize,
        /// Column (receiver).
        dst: usize,
        /// The offending value.
        value: f64,
    },
    /// BvN decomposition requires (numerically) zero diagonal demand.
    DiagonalDemand {
        /// The node with self-demand.
        node: usize,
        /// The offending value.
        value: f64,
    },
    /// Strict BvN decomposition requires equal row and column sums.
    NotDoublyBalanced {
        /// Maximum deviation between marginal sums.
        deviation: f64,
    },
    /// The decomposition failed to make progress (numerical degeneracy).
    DecompositionStalled {
        /// Residual matrix mass when the decomposition stalled.
        residual: f64,
    },
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EndpointOutOfRange { endpoint, n } => {
                write!(
                    f,
                    "endpoint {endpoint} out of range for domain of {n} nodes"
                )
            }
            Self::DuplicateSender(s) => write!(f, "node {s} appears twice as a sender"),
            Self::DuplicateReceiver(r) => write!(f, "node {r} appears twice as a receiver"),
            Self::SelfLoop(v) => write!(f, "self-loop at node {v} is not a valid circuit"),
            Self::IdentityShift { shift, n } => {
                write!(
                    f,
                    "shift {shift} mod {n} is the identity, not a communication step"
                )
            }
            Self::NotPowerOfTwo(n) => write!(f, "domain size {n} is not a power of two"),
            Self::BadXorMask { mask, n } => {
                write!(f, "xor mask {mask} invalid for domain of {n} nodes")
            }
            Self::DimensionMismatch { left, right } => {
                write!(f, "dimension mismatch: {left} vs {right}")
            }
            Self::NegativeDemand { src, dst, value } => {
                write!(f, "negative demand {value} from {src} to {dst}")
            }
            Self::DiagonalDemand { node, value } => {
                write!(f, "demand matrix has self-demand {value} at node {node}")
            }
            Self::NotDoublyBalanced { deviation } => {
                write!(
                    f,
                    "row/column sums differ by {deviation}; matrix is not doubly balanced"
                )
            }
            Self::DecompositionStalled { residual } => {
                write!(f, "BvN decomposition stalled with residual mass {residual}")
            }
        }
    }
}

impl std::error::Error for MatrixError {}
