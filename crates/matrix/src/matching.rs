//! Partial permutations ("matchings") over `n` endpoints.
//!
//! A [`Matching`] simultaneously models
//!
//! * one step of a collective communication algorithm (every GPU sends to at
//!   most one peer and receives from at most one peer), and
//! * one configuration of a photonic circuit switch (every TX port is wired
//!   to at most one RX port).
//!
//! Invariants enforced at construction:
//!
//! * **injectivity** — no two senders share a receiver;
//! * **no self-loops** — `i → i` circuits carry no traffic and are rejected.

use crate::error::MatrixError;

/// A partial permutation of `{0, …, n-1}`: an injective map from senders to
/// receivers with no fixed points.
#[derive(Debug, PartialEq, Eq, Hash)]
pub struct Matching {
    /// `dst[i] = Some(j)` iff node `i` sends to node `j` in this step.
    dst: Vec<Option<usize>>,
}

/// Hand-written so [`Clone::clone_from`] reuses the destination's `dst`
/// buffer (the derive would drop and reallocate it) — the zero-allocation
/// steady-state step leans on `clone_from` to recycle matchings in place.
impl Clone for Matching {
    fn clone(&self) -> Self {
        Self {
            dst: self.dst.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.dst.clone_from(&source.dst);
    }
}

impl Matching {
    /// The empty matching over `n` nodes (nobody communicates).
    pub fn empty(n: usize) -> Self {
        Self { dst: vec![None; n] }
    }

    /// Builds a matching from explicit `(sender, receiver)` pairs.
    ///
    /// # Errors
    ///
    /// Returns an error if an endpoint is out of range, a sender or receiver
    /// appears twice, or a pair is a self-loop.
    pub fn from_pairs(n: usize, pairs: &[(usize, usize)]) -> Result<Self, MatrixError> {
        let mut dst = vec![None; n];
        let mut has_src = vec![false; n];
        for &(s, d) in pairs {
            if s >= n {
                return Err(MatrixError::EndpointOutOfRange { endpoint: s, n });
            }
            if d >= n {
                return Err(MatrixError::EndpointOutOfRange { endpoint: d, n });
            }
            if s == d {
                return Err(MatrixError::SelfLoop(s));
            }
            if dst[s].is_some() {
                return Err(MatrixError::DuplicateSender(s));
            }
            if has_src[d] {
                return Err(MatrixError::DuplicateReceiver(d));
            }
            dst[s] = Some(d);
            has_src[d] = true;
        }
        Ok(Self { dst })
    }

    /// The cyclic shift `i → (i + k) mod n`, the building block of ring
    /// collectives and All-to-All linear shifts.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::IdentityShift`] when `k ≡ 0 (mod n)`.
    pub fn shift(n: usize, k: usize) -> Result<Self, MatrixError> {
        if n == 0 || k.is_multiple_of(n) {
            return Err(MatrixError::IdentityShift { shift: k, n });
        }
        let k = k % n;
        let dst = (0..n).map(|i| Some((i + k) % n)).collect();
        Ok(Self { dst })
    }

    /// The pairwise exchange `i → i XOR mask`, the building block of
    /// recursive-doubling style collectives. Requires `n` to be a power of
    /// two and `0 < mask < n`.
    ///
    /// # Errors
    ///
    /// Returns an error when `n` is not a power of two or the mask is
    /// trivial/out of range.
    pub fn xor(n: usize, mask: usize) -> Result<Self, MatrixError> {
        if n == 0 || !n.is_power_of_two() {
            return Err(MatrixError::NotPowerOfTwo(n));
        }
        if mask == 0 || mask >= n {
            return Err(MatrixError::BadXorMask { mask, n });
        }
        let dst = (0..n).map(|i| Some(i ^ mask)).collect();
        Ok(Self { dst })
    }

    /// Number of endpoints in the domain.
    pub fn n(&self) -> usize {
        self.dst.len()
    }

    /// Number of communicating pairs.
    pub fn len(&self) -> usize {
        self.dst.iter().filter(|d| d.is_some()).count()
    }

    /// `true` when nobody communicates.
    pub fn is_empty(&self) -> bool {
        self.dst.iter().all(|d| d.is_none())
    }

    /// `true` when every node both sends and receives (a full permutation
    /// without fixed points).
    pub fn is_full(&self) -> bool {
        self.len() == self.n()
    }

    /// The receiver of node `i`, if any.
    pub fn dst_of(&self, i: usize) -> Option<usize> {
        self.dst.get(i).copied().flatten()
    }

    /// The sender targeting node `j`, if any. `O(n)`.
    pub fn src_of(&self, j: usize) -> Option<usize> {
        self.dst.iter().position(|&d| d == Some(j))
    }

    /// Iterator over `(sender, receiver)` pairs in sender order.
    pub fn pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.dst
            .iter()
            .enumerate()
            .filter_map(|(s, d)| d.map(|d| (s, d)))
    }

    /// The inverse matching (`j → i` for every `i → j`).
    pub fn inverse(&self) -> Self {
        let n = self.n();
        let mut dst = vec![None; n];
        for (s, d) in self.pairs() {
            dst[d] = Some(s);
        }
        Self { dst }
    }

    /// Functional composition `other ∘ self`: first route by `self`, then by
    /// `other`. Pairs whose intermediate hop does not send in `other` are
    /// dropped; pairs that would become self-loops are dropped as well.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] when domains differ.
    pub fn compose(&self, other: &Self) -> Result<Self, MatrixError> {
        if self.n() != other.n() {
            return Err(MatrixError::DimensionMismatch {
                left: self.n(),
                right: other.n(),
            });
        }
        let dst = self
            .dst
            .iter()
            .enumerate()
            .map(|(i, d)| match d.and_then(|mid| other.dst_of(mid)) {
                Some(fin) if fin != i => Some(fin),
                _ => None,
            })
            .collect();
        Ok(Self { dst })
    }

    /// `true` when the pair `i → j` is part of this matching.
    pub fn contains(&self, i: usize, j: usize) -> bool {
        self.dst_of(i) == Some(j)
    }

    /// `true` when this matching is *symmetric*: `i → j` implies `j → i`
    /// (a pairwise exchange, as used by recursive doubling and Swing).
    pub fn is_pairwise_exchange(&self) -> bool {
        self.pairs().all(|(s, d)| self.dst_of(d) == Some(s))
    }

    /// Number of TX ports whose destination differs between `self` and
    /// `other`. This is the quantity that drives per-port reconfiguration
    /// delay models (research agenda §4 of the paper).
    ///
    /// # Panics
    ///
    /// Panics if the domains differ; configuration diffs are only meaningful
    /// within one fabric.
    pub fn tx_ports_changed(&self, other: &Self) -> usize {
        assert_eq!(self.n(), other.n(), "configuration diff across fabrics");
        self.dst
            .iter()
            .zip(&other.dst)
            .filter(|(a, b)| a != b)
            .count()
    }

    /// Number of distinct ports *involved* in retargeting between the two
    /// configurations: a port counts if its TX destination or its RX source
    /// changes.
    pub fn ports_involved(&self, other: &Self) -> usize {
        assert_eq!(self.n(), other.n(), "configuration diff across fabrics");
        let (si, oi) = (self.inverse(), other.inverse());
        (0..self.n())
            .filter(|&p| self.dst_of(p) != other.dst_of(p) || si.dst_of(p) != oi.dst_of(p))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_roundtrip() {
        let m = Matching::from_pairs(4, &[(0, 1), (1, 0), (2, 3), (3, 2)]).unwrap();
        assert!(m.is_full());
        assert!(m.is_pairwise_exchange());
        assert_eq!(m.dst_of(0), Some(1));
        assert_eq!(m.src_of(0), Some(1));
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn rejects_self_loop() {
        assert_eq!(
            Matching::from_pairs(4, &[(2, 2)]),
            Err(MatrixError::SelfLoop(2))
        );
    }

    #[test]
    fn rejects_duplicate_sender_and_receiver() {
        assert_eq!(
            Matching::from_pairs(4, &[(0, 1), (0, 2)]),
            Err(MatrixError::DuplicateSender(0))
        );
        assert_eq!(
            Matching::from_pairs(4, &[(0, 1), (2, 1)]),
            Err(MatrixError::DuplicateReceiver(1))
        );
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(matches!(
            Matching::from_pairs(4, &[(0, 7)]),
            Err(MatrixError::EndpointOutOfRange { endpoint: 7, n: 4 })
        ));
    }

    #[test]
    fn shift_is_cyclic() {
        let m = Matching::shift(5, 2).unwrap();
        assert!(m.is_full());
        assert_eq!(m.dst_of(4), Some(1));
        assert!(!m.is_pairwise_exchange());
        assert!(Matching::shift(5, 5).is_err());
        assert!(Matching::shift(5, 0).is_err());
        assert!(Matching::shift(0, 1).is_err());
    }

    #[test]
    fn shift_reduces_modulo_n() {
        assert_eq!(
            Matching::shift(5, 7).unwrap(),
            Matching::shift(5, 2).unwrap()
        );
    }

    #[test]
    fn xor_is_pairwise() {
        let m = Matching::xor(8, 4).unwrap();
        assert!(m.is_full());
        assert!(m.is_pairwise_exchange());
        assert_eq!(m.dst_of(3), Some(7));
        assert!(Matching::xor(6, 2).is_err());
        assert!(Matching::xor(8, 0).is_err());
        assert!(Matching::xor(8, 8).is_err());
    }

    #[test]
    fn inverse_of_shift() {
        let m = Matching::shift(6, 1).unwrap();
        assert_eq!(m.inverse(), Matching::shift(6, 5).unwrap());
        let x = Matching::xor(8, 2).unwrap();
        assert_eq!(x.inverse(), x);
    }

    #[test]
    fn compose_shifts_adds() {
        let a = Matching::shift(7, 2).unwrap();
        let b = Matching::shift(7, 3).unwrap();
        assert_eq!(a.compose(&b).unwrap(), Matching::shift(7, 5).unwrap());
    }

    #[test]
    fn compose_dropping_self_loops() {
        let a = Matching::shift(4, 2).unwrap();
        // shift(2) ∘ shift(2) = identity → everything dropped.
        assert!(a.compose(&a).unwrap().is_empty());
    }

    #[test]
    fn compose_dimension_mismatch() {
        let a = Matching::shift(4, 1).unwrap();
        let b = Matching::shift(5, 1).unwrap();
        assert!(a.compose(&b).is_err());
    }

    #[test]
    fn partial_matching_accessors() {
        let m = Matching::from_pairs(5, &[(0, 3)]).unwrap();
        assert!(!m.is_full());
        assert!(!m.is_empty());
        assert_eq!(m.len(), 1);
        assert_eq!(m.src_of(3), Some(0));
        assert_eq!(m.src_of(1), None);
        assert_eq!(m.dst_of(4), None);
    }

    #[test]
    fn diff_counts() {
        let ring = Matching::shift(4, 1).unwrap();
        let swap = Matching::from_pairs(4, &[(0, 1), (1, 0), (2, 3), (3, 2)]).unwrap();
        // TX side: ports 1 and 3 change destination (0→1 and 2→3 coincide).
        assert_eq!(ring.tx_ports_changed(&swap), 2);
        assert_eq!(ring.tx_ports_changed(&ring), 0);
        // RX side changes make all four ports "involved".
        assert_eq!(ring.ports_involved(&swap), 4);
        assert_eq!(ring.ports_involved(&ring), 0);
    }

    #[test]
    fn empty_matching() {
        let m = Matching::empty(3);
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert_eq!(m.pairs().count(), 0);
    }
}
