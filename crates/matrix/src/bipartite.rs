//! Hopcroft–Karp maximum bipartite matching.
//!
//! The engine behind Birkhoff's constructive proof in [`crate::bvn`]: at each
//! extraction step we need a maximum matching on the support of the residual
//! demand matrix. Hopcroft–Karp runs in `O(E·√V)`, fast enough to decompose
//! demand matrices for thousands of endpoints.

/// Computes a maximum matching in a bipartite graph with `n_left` left
/// vertices and `n_right` right vertices.
///
/// `adj[u]` lists the right-vertices adjacent to left-vertex `u`.
/// Returns `match_of_left` where `match_of_left[u] = Some(v)` iff the edge
/// `(u, v)` is in the matching.
pub fn maximum_matching(n_left: usize, n_right: usize, adj: &[Vec<usize>]) -> Vec<Option<usize>> {
    assert_eq!(
        adj.len(),
        n_left,
        "adjacency list must cover all left vertices"
    );
    debug_assert!(adj.iter().flatten().all(|&v| v < n_right));

    const INF: u32 = u32::MAX;
    // 1-indexed internally: 0 is the NIL vertex.
    let mut pair_u = vec![0usize; n_left + 1];
    let mut pair_v = vec![0usize; n_right + 1];
    let mut dist = vec![INF; n_left + 1];
    let mut queue = std::collections::VecDeque::new();

    // BFS builds the layered graph of shortest alternating paths.
    let bfs = |pair_u: &[usize],
               pair_v: &[usize],
               dist: &mut [u32],
               queue: &mut std::collections::VecDeque<usize>|
     -> bool {
        queue.clear();
        for u in 1..=n_left {
            if pair_u[u] == 0 {
                dist[u] = 0;
                queue.push_back(u);
            } else {
                dist[u] = INF;
            }
        }
        let mut found = false;
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u - 1] {
                let w = pair_v[v + 1];
                if w == 0 {
                    found = true;
                } else if dist[w] == INF {
                    dist[w] = dist[u] + 1;
                    queue.push_back(w);
                }
            }
        }
        found
    };

    // DFS augments along the layered graph.
    fn dfs(
        u: usize,
        adj: &[Vec<usize>],
        pair_u: &mut [usize],
        pair_v: &mut [usize],
        dist: &mut [u32],
    ) -> bool {
        const INF: u32 = u32::MAX;
        for i in 0..adj[u - 1].len() {
            let v = adj[u - 1][i];
            let w = pair_v[v + 1];
            if w == 0 || (dist[w] == dist[u] + 1 && dfs(w, adj, pair_u, pair_v, dist)) {
                pair_v[v + 1] = u;
                pair_u[u] = v + 1;
                return true;
            }
        }
        dist[u] = INF;
        false
    }

    while bfs(&pair_u, &pair_v, &mut dist, &mut queue) {
        for u in 1..=n_left {
            if pair_u[u] == 0 {
                dfs(u, adj, &mut pair_u, &mut pair_v, &mut dist);
            }
        }
    }

    (1..=n_left)
        .map(|u| (pair_u[u] != 0).then(|| pair_u[u] - 1))
        .collect()
}

/// Size of the matching returned by [`maximum_matching`].
pub fn matching_size(match_of_left: &[Option<usize>]) -> usize {
    match_of_left.iter().filter(|m| m.is_some()).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn check_valid(n_right: usize, adj: &[Vec<usize>], m: &[Option<usize>]) {
        let mut used = vec![false; n_right];
        for (u, v) in m.iter().enumerate() {
            if let Some(v) = *v {
                assert!(adj[u].contains(&v), "matched edge ({u},{v}) not in graph");
                assert!(!used[v], "right vertex {v} matched twice");
                used[v] = true;
            }
        }
    }

    #[test]
    fn perfect_matching_on_cycle_support() {
        // Support of a shift permutation: unique perfect matching.
        let n = 6;
        let adj: Vec<Vec<usize>> = (0..n).map(|i| vec![(i + 1) % n]).collect();
        let m = maximum_matching(n, n, &adj);
        assert_eq!(matching_size(&m), n);
        check_valid(n, &adj, &m);
    }

    #[test]
    fn empty_graph() {
        let adj: Vec<Vec<usize>> = vec![vec![]; 4];
        let m = maximum_matching(4, 4, &adj);
        assert_eq!(matching_size(&m), 0);
    }

    #[test]
    fn koenig_example() {
        // A graph whose maximum matching is strictly smaller than n.
        // Left {0,1,2}, right {0,1,2}; everyone only likes right-0 and right-1.
        let adj = vec![vec![0, 1], vec![0, 1], vec![0, 1]];
        let m = maximum_matching(3, 3, &adj);
        assert_eq!(matching_size(&m), 2);
        check_valid(3, &adj, &m);
    }

    #[test]
    fn complete_bipartite_is_perfect() {
        let n = 9;
        let adj: Vec<Vec<usize>> = (0..n).map(|_| (0..n).collect()).collect();
        let m = maximum_matching(n, n, &adj);
        assert_eq!(matching_size(&m), n);
        check_valid(n, &adj, &m);
    }

    #[test]
    fn rectangular_sides() {
        // More left than right vertices.
        let adj = vec![vec![0], vec![0, 1], vec![1], vec![0, 1]];
        let m = maximum_matching(4, 2, &adj);
        assert_eq!(matching_size(&m), 2);
        check_valid(2, &adj, &m);
    }

    /// Brute-force maximum matching for cross-checking (n ≤ ~8).
    fn brute_force(n_left: usize, n_right: usize, adj: &[Vec<usize>]) -> usize {
        fn rec(u: usize, adj: &[Vec<usize>], used: &mut Vec<bool>) -> usize {
            if u == adj.len() {
                return 0;
            }
            // Skip u.
            let mut best = rec(u + 1, adj, used);
            for &v in &adj[u] {
                if !used[v] {
                    used[v] = true;
                    best = best.max(1 + rec(u + 1, adj, used));
                    used[v] = false;
                }
            }
            best
        }
        let _ = n_left;
        rec(0, adj, &mut vec![false; n_right])
    }

    #[test]
    fn known_matching_numbers_on_structured_families() {
        // Path-like bipartite graph P: left i ~ right {i, i+1} has a perfect
        // matching; crown graph (complete minus the identity) has one for
        // n ≥ 2; a star from one left vertex saturates exactly one edge.
        let n = 7;
        let path: Vec<Vec<usize>> = (0..n).map(|i| vec![i, (i + 1).min(n - 1)]).collect();
        let m = maximum_matching(n, n, &path);
        assert_eq!(matching_size(&m), n);
        check_valid(n, &path, &m);

        let crown: Vec<Vec<usize>> = (0..n)
            .map(|i| (0..n).filter(|&j| j != i).collect())
            .collect();
        let m = maximum_matching(n, n, &crown);
        assert_eq!(matching_size(&m), n);
        check_valid(n, &crown, &m);

        let mut star: Vec<Vec<usize>> = vec![vec![]; n];
        star[3] = (0..n).collect();
        let m = maximum_matching(n, n, &star);
        assert_eq!(matching_size(&m), 1);
        check_valid(n, &star, &m);

        // Disjoint union of k complete blocks of size 2: matching number is
        // exactly one per block-row pair, i.e. 2 per block.
        let blocks = 3;
        let union: Vec<Vec<usize>> = (0..2 * blocks)
            .map(|i| {
                let b = i / 2;
                vec![2 * b, 2 * b + 1]
            })
            .collect();
        let m = maximum_matching(2 * blocks, 2 * blocks, &union);
        assert_eq!(matching_size(&m), 2 * blocks);
        check_valid(2 * blocks, &union, &m);
    }

    #[test]
    fn perfect_matchings_convert_to_valid_matching_objects() {
        // Bridge to `Matching`: a perfect Hopcroft–Karp result on a support
        // without self-pairs is exactly a circuit-switch configuration.
        let n = 6;
        let adj: Vec<Vec<usize>> = (0..n)
            .map(|i| (0..n).filter(|&j| j != i).collect())
            .collect();
        let m = maximum_matching(n, n, &adj);
        assert_eq!(matching_size(&m), n);
        let pairs: Vec<(usize, usize)> = m
            .iter()
            .enumerate()
            .filter_map(|(u, v)| v.map(|v| (u, v)))
            .collect();
        let matching = crate::Matching::from_pairs(n, &pairs).unwrap();
        assert!(matching.is_full());
        for (s, d) in matching.pairs() {
            assert!(adj[s].contains(&d));
        }
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let nl = rng.random_range(1..7);
            let nr = rng.random_range(1..7);
            let adj: Vec<Vec<usize>> = (0..nl)
                .map(|_| (0..nr).filter(|_| rng.random_bool(0.4)).collect())
                .collect();
            let m = maximum_matching(nl, nr, &adj);
            check_valid(nr, &adj, &m);
            assert_eq!(matching_size(&m), brute_force(nl, nr, &adj));
        }
    }
}
