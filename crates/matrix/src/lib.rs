//! # aps-matrix — matchings, demand matrices and BvN decomposition
//!
//! Linear-algebraic substrate for the adaptive photonic scale-up domain
//! stack. This crate provides the objects that Observation 1 of the paper
//! ("collectives induce BvN decompositions") is stated over:
//!
//! * [`Matching`] — a (partial) permutation of `n` endpoints. One collective
//!   communication step *is* a matching: every GPU sends to at most one peer
//!   and receives from at most one peer. A photonic circuit-switch
//!   configuration is *also* a matching (TX port → RX port), which is why the
//!   same type is used by `aps-fabric`.
//! * [`DemandMatrix`] — an `n × n` non-negative traffic matrix; the aggregate
//!   demand of a collective is the weighted sum of its step matchings
//!   (eq. (1) of the paper).
//! * [`bipartite`] — Hopcroft–Karp maximum bipartite matching, the engine
//!   behind Birkhoff's constructive proof.
//! * [`bvn`] — Birkhoff–von Neumann decomposition: express a doubly-balanced
//!   demand matrix as a convex combination of matchings.
//! * [`BitSet`] — a small dense bit-set used by the collective-semantics
//!   verifier in `aps-collectives` (contribution tracking).
//!
//! Everything here is deterministic and allocation-conscious: matchings are a
//! single `Vec<Option<usize>>`, matrices a single row-major `Vec<f64>`.

pub mod bipartite;
pub mod bitset;
pub mod bvn;
pub mod demand;
pub mod error;
pub mod matching;

pub use bitset::BitSet;
pub use bvn::{BvnDecomposition, BvnTerm};
pub use demand::DemandMatrix;
pub use error::MatrixError;
pub use matching::Matching;
