//! Birkhoff–von Neumann (BvN) decomposition of demand matrices.
//!
//! Birkhoff's theorem: every doubly stochastic matrix is a convex combination
//! of permutation matrices, constructively obtained by repeatedly extracting
//! a perfect matching on the support and subtracting its minimum entry. At
//! most `(n-1)² + 1` terms are needed.
//!
//! The paper's Observation 1 is the converse direction for collectives: an
//! algorithm's step sequence *is already* a BvN decomposition of its
//! aggregate demand (no computation needed). This module provides the forward
//! direction, which is what demand-aware circuit scheduling systems
//! (Helios/ReacToR-style, §2 of the paper) compute from an aggregate traffic
//! matrix — and which the paper's optimized schedules are compared against.

use crate::bipartite::{matching_size, maximum_matching};
use crate::demand::DemandMatrix;
use crate::error::MatrixError;
use crate::matching::Matching;

/// One term `weight · matching` of a BvN decomposition.
#[derive(Debug, Clone, PartialEq)]
pub struct BvnTerm {
    /// The scalar weight (data volume attributed to this configuration).
    pub weight: f64,
    /// The matching (circuit-switch configuration).
    pub matching: Matching,
}

/// A (possibly partial) BvN decomposition `D ≈ Σ wᵢ·Mᵢ + R` with residual
/// mass `‖R‖₁ = residual`.
#[derive(Debug, Clone, PartialEq)]
pub struct BvnDecomposition {
    /// Matrix dimension.
    pub n: usize,
    /// The extracted terms, in extraction order (largest bottleneck first is
    /// *not* guaranteed; this is plain Birkhoff order).
    pub terms: Vec<BvnTerm>,
    /// Total demand mass left undecomposed (≤ `n² · tol` for balanced
    /// inputs).
    pub residual: f64,
}

impl BvnDecomposition {
    /// Reconstructs `Σ wᵢ·Mᵢ`.
    ///
    /// # Errors
    ///
    /// Propagates dimension errors from matrix assembly (impossible for
    /// decompositions produced by this module).
    pub fn reconstruct(&self) -> Result<DemandMatrix, MatrixError> {
        let terms: Vec<(f64, &Matching)> =
            self.terms.iter().map(|t| (t.weight, &t.matching)).collect();
        DemandMatrix::from_matchings(self.n, &terms)
    }

    /// Sum of term weights (total decomposed volume per node, for balanced
    /// inputs this approaches the common row sum).
    pub fn total_weight(&self) -> f64 {
        self.terms.iter().map(|t| t.weight).sum()
    }
}

/// Strict Birkhoff decomposition of a doubly balanced matrix with zero
/// diagonal.
///
/// Entries smaller than `tol` are treated as zero. The result satisfies
/// `D ≈ Σ wᵢ·Mᵢ` with residual mass at most `n² · tol`.
///
/// ```
/// use aps_matrix::{bvn, DemandMatrix};
///
/// // The uniform All-to-All demand over 4 nodes decomposes into the three
/// // shift permutations.
/// let d = DemandMatrix::uniform_all_to_all(4, 2.0);
/// let decomposition = bvn::decompose(&d, 1e-9).unwrap();
/// assert_eq!(decomposition.terms.len(), 3);
/// assert!(decomposition.reconstruct().unwrap().approx_eq(&d, 1e-9));
/// ```
///
/// # Errors
///
/// * [`MatrixError::DiagonalDemand`] if any diagonal entry exceeds `tol`
///   (matchings cannot express self-traffic);
/// * [`MatrixError::NotDoublyBalanced`] if row/column sums deviate by more
///   than `n · tol` (Birkhoff's theorem requires double stochasticity);
/// * [`MatrixError::DecompositionStalled`] on numerical degeneracy.
pub fn decompose(d: &DemandMatrix, tol: f64) -> Result<BvnDecomposition, MatrixError> {
    let n = d.n();
    for i in 0..n {
        let v = d.get(i, i);
        if v > tol {
            return Err(MatrixError::DiagonalDemand { node: i, value: v });
        }
    }
    let deviation = d.balance_deviation();
    if deviation > tol * n.max(1) as f64 {
        return Err(MatrixError::NotDoublyBalanced { deviation });
    }
    decompose_inner(d, tol, true)
}

/// Relaxed, greedy BvN-style decomposition for arbitrary non-negative
/// matrices: repeatedly extracts a *maximum* (not necessarily perfect)
/// matching on the support and subtracts its bottleneck weight. Terminates
/// when no entry above `tol` remains or no progress is possible; the
/// undecomposed mass is reported as `residual`.
///
/// # Errors
///
/// Returns [`MatrixError::DiagonalDemand`] if any diagonal entry exceeds
/// `tol`.
pub fn decompose_relaxed(d: &DemandMatrix, tol: f64) -> Result<BvnDecomposition, MatrixError> {
    let n = d.n();
    for i in 0..n {
        let v = d.get(i, i);
        if v > tol {
            return Err(MatrixError::DiagonalDemand { node: i, value: v });
        }
    }
    decompose_inner(d, tol, false)
}

fn decompose_inner(
    d: &DemandMatrix,
    tol: f64,
    strict: bool,
) -> Result<BvnDecomposition, MatrixError> {
    let n = d.n();
    let mut residual = d.clone();
    let mut terms = Vec::new();
    // Birkhoff bound on term count, plus slack for numerical ties.
    let max_iters = (n.saturating_sub(1)).pow(2) + n + 2;

    for _ in 0..max_iters {
        if residual.max_entry() <= tol {
            break;
        }
        // Support graph of entries above tolerance.
        let adj: Vec<Vec<usize>> = (0..n)
            .map(|j| {
                (0..n)
                    .filter(|&k| k != j && residual.get(j, k) > tol)
                    .collect()
            })
            .collect();
        let m = maximum_matching(n, n, &adj);
        let size = matching_size(&m);
        if size == 0 {
            break;
        }
        if strict {
            // For a doubly balanced matrix, every row with remaining mass
            // must be matched; by Hall's theorem a maximum matching covers
            // all of them. A smaller matching signals numerical degeneracy.
            let rows_with_mass = (0..n)
                .filter(|&j| (0..n).any(|k| residual.get(j, k) > tol))
                .count();
            if size < rows_with_mass {
                return Err(MatrixError::DecompositionStalled {
                    residual: residual.total(),
                });
            }
        }
        let pairs: Vec<(usize, usize)> = m
            .iter()
            .enumerate()
            .filter_map(|(u, v)| v.map(|v| (u, v)))
            .collect();
        let matching = Matching::from_pairs(n, &pairs)?;
        let weight = pairs
            .iter()
            .map(|&(s, t)| residual.get(s, t))
            .fold(f64::MAX, f64::min);
        debug_assert!(weight > tol);
        for &(s, t) in &pairs {
            let v = (residual.get(s, t) - weight).max(0.0);
            residual.set(s, t, v)?;
        }
        terms.push(BvnTerm { weight, matching });
    }

    let residual_mass = residual.total();
    if strict && residual_mass > tol * (n * n) as f64 {
        return Err(MatrixError::DecompositionStalled {
            residual: residual_mass,
        });
    }
    Ok(BvnDecomposition {
        n,
        terms,
        residual: residual_mass,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    const TOL: f64 = 1e-9;

    #[test]
    fn shift_matrix_decomposes_to_itself() {
        let s = Matching::shift(6, 2).unwrap();
        let d = DemandMatrix::from_matchings(6, &[(5.0, &s)]).unwrap();
        let b = decompose(&d, TOL).unwrap();
        assert_eq!(b.terms.len(), 1);
        assert_eq!(b.terms[0].matching, s);
        assert!((b.terms[0].weight - 5.0).abs() < TOL);
        assert!(b.residual < TOL);
    }

    #[test]
    fn uniform_all_to_all_needs_n_minus_1_terms() {
        let n = 8;
        let d = DemandMatrix::uniform_all_to_all(n, 1.0);
        let b = decompose(&d, TOL).unwrap();
        assert_eq!(b.terms.len(), n - 1);
        assert!(b.reconstruct().unwrap().approx_eq(&d, 1e-6));
    }

    #[test]
    fn reconstruction_of_random_balanced_matrix() {
        // Sum of random permutations is doubly balanced.
        let mut rng = StdRng::seed_from_u64(11);
        let n = 10;
        let mut d = DemandMatrix::zeros(n);
        for _ in 0..6 {
            let mut perm: Vec<usize> = (0..n).collect();
            loop {
                perm.shuffle(&mut rng);
                if perm.iter().enumerate().all(|(i, &p)| i != p) {
                    break;
                }
            }
            let pairs: Vec<(usize, usize)> =
                perm.iter().enumerate().map(|(i, &p)| (i, p)).collect();
            let m = Matching::from_pairs(n, &pairs).unwrap();
            d.add_matching(rng.random_range(0.5..4.0), &m).unwrap();
        }
        let b = decompose(&d, TOL).unwrap();
        assert!(b.reconstruct().unwrap().approx_eq(&d, 1e-6));
        // Birkhoff bound.
        assert!(b.terms.len() <= (n - 1) * (n - 1) + 1);
    }

    #[test]
    fn rejects_diagonal_demand() {
        let mut d = DemandMatrix::zeros(3);
        d.set(1, 1, 2.0).unwrap();
        assert!(matches!(
            decompose(&d, TOL),
            Err(MatrixError::DiagonalDemand { node: 1, .. })
        ));
        assert!(decompose_relaxed(&d, TOL).is_err());
    }

    #[test]
    fn rejects_unbalanced_strict() {
        let mut d = DemandMatrix::zeros(3);
        d.set(0, 1, 1.0).unwrap();
        assert!(matches!(
            decompose(&d, TOL),
            Err(MatrixError::NotDoublyBalanced { .. })
        ));
    }

    #[test]
    fn relaxed_handles_unbalanced() {
        let mut d = DemandMatrix::zeros(3);
        d.set(0, 1, 3.0).unwrap();
        d.set(1, 2, 1.0).unwrap();
        let b = decompose_relaxed(&d, TOL).unwrap();
        // Everything decomposable by matchings: residual is zero.
        assert!(b.residual < 1e-6);
        assert!(b.reconstruct().unwrap().approx_eq(&d, 1e-6));
    }

    #[test]
    fn terms_sum_back_to_demand_with_positive_weights() {
        // A composite demand: uniform All-to-All plus two weighted shifts —
        // still doubly balanced, so the strict decomposition must be exact.
        let n = 9;
        let mut d = DemandMatrix::uniform_all_to_all(n, 1.5);
        d.add_matching(2.25, &Matching::shift(n, 2).unwrap())
            .unwrap();
        d.add_matching(0.75, &Matching::shift(n, 4).unwrap())
            .unwrap();
        let b = decompose(&d, TOL).unwrap();

        // Coefficients are strictly positive (non-negative and non-trivial).
        assert!(b.terms.iter().all(|t| t.weight > 0.0));
        // Each term is a genuine matching of the right dimension.
        assert!(b
            .terms
            .iter()
            .all(|t| t.matching.n() == n && !t.matching.is_empty()));
        // The terms sum back to the demand matrix entry-for-entry.
        let rec = b.reconstruct().unwrap();
        for s in 0..n {
            for t in 0..n {
                assert!(
                    (rec.get(s, t) - d.get(s, t)).abs() < 1e-6,
                    "entry ({s},{t}): {} vs {}",
                    rec.get(s, t),
                    d.get(s, t)
                );
            }
        }
        // For a balanced matrix the decomposed volume equals the row sum.
        let row = d.row_sums()[0];
        assert!((b.total_weight() - row).abs() < 1e-6);
        assert!(b.residual < 1e-6);
    }

    #[test]
    fn relaxed_terms_never_exceed_demand_and_conserve_mass() {
        // An arbitrary unbalanced sparse matrix: the relaxed decomposition
        // must keep weights non-negative and conserve total mass between the
        // reconstruction and the residual.
        let mut d = DemandMatrix::zeros(5);
        for (s, t, v) in [
            (0, 3, 2.0),
            (1, 3, 0.5),
            (2, 0, 1.25),
            (4, 1, 3.0),
            (1, 2, 0.25),
        ] {
            d.set(s, t, v).unwrap();
        }
        let b = decompose_relaxed(&d, TOL).unwrap();
        assert!(b.terms.iter().all(|t| t.weight > 0.0));
        let rec = b.reconstruct().unwrap();
        for (s, t, v) in rec.entries() {
            assert!(v <= d.get(s, t) + TOL, "entry ({s},{t}) overshoots demand");
        }
        assert!((rec.total() + b.residual - d.total()).abs() < 1e-6);
    }

    #[test]
    fn zero_matrix_decomposes_trivially() {
        let d = DemandMatrix::zeros(4);
        let b = decompose(&d, TOL).unwrap();
        assert!(b.terms.is_empty());
        assert_eq!(b.residual, 0.0);
        assert_eq!(b.total_weight(), 0.0);
    }
}
