//! Aggregate demand matrices (eq. (1) of the paper).
//!
//! The aggregate demand of a collective algorithm with steps
//! `⟨M₁, …, M_s⟩` and volumes `⟨m₁, …, m_s⟩` is
//! `M = m₁·M₁ + … + m_s·M_s` — by construction a weighted sum of
//! permutation (matching) matrices, i.e. a BvN decomposition (Observation 1).

use crate::error::MatrixError;
use crate::matching::Matching;

/// An `n × n` non-negative traffic matrix, row-major. Entry `(j, k)` is the
/// volume sent from node `j` to node `k` (in arbitrary units, typically
/// bytes).
#[derive(Debug, Clone, PartialEq)]
pub struct DemandMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DemandMatrix {
    /// The all-zero matrix.
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Builds the weighted sum `Σ wᵢ·Mᵢ` of matchings (eq. (1)).
    ///
    /// # Errors
    ///
    /// Returns an error if a weight is negative or dimensions disagree.
    pub fn from_matchings(n: usize, terms: &[(f64, &Matching)]) -> Result<Self, MatrixError> {
        let mut m = Self::zeros(n);
        for &(w, matching) in terms {
            m.add_matching(w, matching)?;
        }
        Ok(m)
    }

    /// Uniform all-to-all demand: `volume_per_pair` between every ordered
    /// pair of distinct nodes.
    pub fn uniform_all_to_all(n: usize, volume_per_pair: f64) -> Self {
        let mut m = Self::zeros(n);
        for j in 0..n {
            for k in 0..n {
                if j != k {
                    m.data[j * n + k] = volume_per_pair;
                }
            }
        }
        m
    }

    /// Adds `w · M` into this matrix.
    ///
    /// # Errors
    ///
    /// Returns an error on dimension mismatch or negative weight.
    pub fn add_matching(&mut self, w: f64, matching: &Matching) -> Result<(), MatrixError> {
        if matching.n() != self.n {
            return Err(MatrixError::DimensionMismatch {
                left: self.n,
                right: matching.n(),
            });
        }
        if w < 0.0 {
            return Err(MatrixError::NegativeDemand {
                src: 0,
                dst: 0,
                value: w,
            });
        }
        for (s, d) in matching.pairs() {
            self.data[s * self.n + d] += w;
        }
        Ok(())
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Entry `(src, dst)`.
    ///
    /// # Panics
    ///
    /// Panics when an index is out of range.
    pub fn get(&self, src: usize, dst: usize) -> f64 {
        assert!(src < self.n && dst < self.n, "index out of range");
        self.data[src * self.n + dst]
    }

    /// Sets entry `(src, dst)`.
    ///
    /// # Errors
    ///
    /// Returns an error when an index is out of range or the value negative.
    pub fn set(&mut self, src: usize, dst: usize, value: f64) -> Result<(), MatrixError> {
        if src >= self.n {
            return Err(MatrixError::EndpointOutOfRange {
                endpoint: src,
                n: self.n,
            });
        }
        if dst >= self.n {
            return Err(MatrixError::EndpointOutOfRange {
                endpoint: dst,
                n: self.n,
            });
        }
        if value < 0.0 {
            return Err(MatrixError::NegativeDemand { src, dst, value });
        }
        self.data[src * self.n + dst] = value;
        Ok(())
    }

    /// Row sums (total egress volume per node).
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.n)
            .map(|j| self.data[j * self.n..(j + 1) * self.n].iter().sum())
            .collect()
    }

    /// Column sums (total ingress volume per node).
    pub fn col_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.n];
        for j in 0..self.n {
            for (k, sum) in sums.iter_mut().enumerate() {
                *sum += self.data[j * self.n + k];
            }
        }
        sums
    }

    /// Total volume over all pairs.
    pub fn total(&self) -> f64 {
        self.data.iter().sum()
    }

    /// The largest entry.
    pub fn max_entry(&self) -> f64 {
        self.data.iter().fold(0.0, |a, &b| a.max(b))
    }

    /// Total mass on the diagonal (self-demand; should be 0 for collectives).
    pub fn diagonal_total(&self) -> f64 {
        (0..self.n).map(|i| self.data[i * self.n + i]).sum()
    }

    /// Maximum deviation among all row and column sums. A matrix is *doubly
    /// balanced* (a scaled doubly stochastic matrix) when this is ~0; that is
    /// the precondition of the strict Birkhoff decomposition.
    pub fn balance_deviation(&self) -> f64 {
        let rows = self.row_sums();
        let cols = self.col_sums();
        let all: Vec<f64> = rows.into_iter().chain(cols).collect();
        let max = all.iter().fold(f64::MIN, |a, &b| a.max(b));
        let min = all.iter().fold(f64::MAX, |a, &b| a.min(b));
        (max - min).max(0.0)
    }

    /// `true` when all row and column sums agree within `tol`.
    pub fn is_doubly_balanced(&self, tol: f64) -> bool {
        self.balance_deviation() <= tol
    }

    /// Multiplies every entry by `factor`.
    ///
    /// # Errors
    ///
    /// Returns an error for negative factors.
    pub fn scale(&mut self, factor: f64) -> Result<(), MatrixError> {
        if factor < 0.0 {
            return Err(MatrixError::NegativeDemand {
                src: 0,
                dst: 0,
                value: factor,
            });
        }
        for v in &mut self.data {
            *v *= factor;
        }
        Ok(())
    }

    /// `true` when every entry differs from `other` by at most `tol`.
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        self.n == other.n
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Number of strictly positive entries.
    pub fn support_size(&self) -> usize {
        self.data.iter().filter(|&&v| v > 0.0).count()
    }

    /// Iterator over `(src, dst, volume)` for strictly positive entries.
    pub fn entries(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        let n = self.n;
        self.data
            .iter()
            .enumerate()
            .filter_map(move |(idx, &v)| (v > 0.0).then_some((idx / n, idx % n, v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_matchings_sums_weights() {
        let a = Matching::shift(4, 1).unwrap();
        let b = Matching::shift(4, 1).unwrap();
        let m = DemandMatrix::from_matchings(4, &[(2.0, &a), (3.0, &b)]).unwrap();
        assert_eq!(m.get(0, 1), 5.0);
        assert_eq!(m.get(3, 0), 5.0);
        assert_eq!(m.get(0, 2), 0.0);
        assert_eq!(m.total(), 20.0);
        assert!(m.is_doubly_balanced(1e-12));
    }

    #[test]
    fn rejects_negative_weight() {
        let a = Matching::shift(4, 1).unwrap();
        assert!(DemandMatrix::from_matchings(4, &[(-1.0, &a)]).is_err());
    }

    #[test]
    fn rejects_dimension_mismatch() {
        let a = Matching::shift(5, 1).unwrap();
        let mut m = DemandMatrix::zeros(4);
        assert!(m.add_matching(1.0, &a).is_err());
    }

    #[test]
    fn uniform_all_to_all_marginals() {
        let m = DemandMatrix::uniform_all_to_all(5, 2.0);
        assert_eq!(m.row_sums(), vec![8.0; 5]);
        assert_eq!(m.col_sums(), vec![8.0; 5]);
        assert_eq!(m.diagonal_total(), 0.0);
        assert_eq!(m.support_size(), 20);
        assert!(m.is_doubly_balanced(0.0));
    }

    #[test]
    fn set_get_and_errors() {
        let mut m = DemandMatrix::zeros(3);
        m.set(0, 2, 4.5).unwrap();
        assert_eq!(m.get(0, 2), 4.5);
        assert!(m.set(3, 0, 1.0).is_err());
        assert!(m.set(0, 3, 1.0).is_err());
        assert!(m.set(0, 1, -1.0).is_err());
    }

    #[test]
    fn balance_deviation_detects_imbalance() {
        let mut m = DemandMatrix::zeros(3);
        m.set(0, 1, 1.0).unwrap();
        assert!(!m.is_doubly_balanced(1e-9));
        assert!((m.balance_deviation() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scale_and_entries() {
        let mut m = DemandMatrix::uniform_all_to_all(3, 1.0);
        m.scale(0.5).unwrap();
        assert_eq!(m.get(0, 1), 0.5);
        assert!(m.scale(-2.0).is_err());
        let entries: Vec<_> = m.entries().collect();
        assert_eq!(entries.len(), 6);
        assert!(entries.iter().all(|&(s, d, v)| s != d && v == 0.5));
    }

    #[test]
    fn approx_eq_tolerance() {
        let a = DemandMatrix::uniform_all_to_all(3, 1.0);
        let mut b = a.clone();
        b.set(0, 1, 1.0 + 1e-9).unwrap();
        assert!(a.approx_eq(&b, 1e-8));
        assert!(!a.approx_eq(&b, 1e-10));
        assert!(!a.approx_eq(&DemandMatrix::zeros(4), 1.0));
    }
}
