//! Property-based tests for matchings, demand matrices and BvN
//! decomposition.

use aps_matrix::{bvn, BitSet, DemandMatrix, Matching};
use proptest::prelude::*;
use std::collections::HashSet;

/// Strategy: a random derangement over `n ∈ [2, 12]` as pair list.
fn arb_derangement() -> impl Strategy<Value = (usize, Vec<usize>)> {
    (2usize..12)
        .prop_flat_map(|n| {
            (
                Just(n),
                proptest::sample::subsequence((0..n).collect::<Vec<_>>(), n),
            )
        })
        .prop_flat_map(|(n, _)| {
            // Build via random shuffle, rejecting fixed points by rotation.
            (Just(n), proptest::collection::vec(0u64..u64::MAX, n))
        })
        .prop_map(|(n, keys)| {
            let mut idx: Vec<usize> = (0..n).collect();
            idx.sort_by_key(|&i| keys[i]);
            // Rotate the sorted order by one: a permutation with no fixed
            // point relative to positions (a cyclic derangement).
            let perm: Vec<usize> = (0..n).map(|i| idx[(i + 1) % n]).collect();
            let mut dst = vec![0usize; n];
            for (i, &p) in perm.iter().enumerate() {
                dst[idx[i]] = p;
            }
            (n, dst)
        })
}

fn matching_from(n: usize, dst: &[usize]) -> Matching {
    let pairs: Vec<(usize, usize)> = dst.iter().enumerate().map(|(i, &d)| (i, d)).collect();
    Matching::from_pairs(n, &pairs).expect("valid derangement")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn inverse_is_an_involution((n, dst) in arb_derangement()) {
        let m = matching_from(n, &dst);
        prop_assert_eq!(m.inverse().inverse(), m);
    }

    #[test]
    fn inverse_swaps_src_and_dst((n, dst) in arb_derangement()) {
        let m = matching_from(n, &dst);
        let inv = m.inverse();
        for (s, d) in m.pairs() {
            prop_assert_eq!(inv.dst_of(d), Some(s));
            prop_assert_eq!(m.src_of(d), Some(s));
        }
    }

    #[test]
    fn compose_with_inverse_is_empty((n, dst) in arb_derangement()) {
        // m ∘ m⁻¹ maps every node to itself → all self-loops dropped.
        let m = matching_from(n, &dst);
        prop_assert!(m.compose(&m.inverse()).unwrap().is_empty());
    }

    #[test]
    fn tx_diff_is_a_metric_like((na, da) in arb_derangement(), seed in 0u64..1000) {
        // Symmetry and identity of the TX-port diff, against a second
        // derangement derived from the first by rotation.
        let a = matching_from(na, &da);
        let rot = (seed as usize % (na - 1)) + 1;
        let db: Vec<usize> = (0..na).map(|i| (da[i] + rot) % na).collect();
        if let Ok(b) = Matching::from_pairs(
            na,
            &db.iter().enumerate().filter(|(i, d)| *i != **d).map(|(i, &d)| (i, d)).collect::<Vec<_>>(),
        ) {
            prop_assert_eq!(a.tx_ports_changed(&b), b.tx_ports_changed(&a));
        }
        prop_assert_eq!(a.tx_ports_changed(&a), 0);
        prop_assert_eq!(a.ports_involved(&a), 0);
    }

    #[test]
    fn weighted_sums_are_doubly_balanced(
        (n, dst) in arb_derangement(),
        weights in proptest::collection::vec(0.1f64..10.0, 1..6),
        rots in proptest::collection::vec(1usize..11, 1..6),
    ) {
        // Sum of full permutations (rotations of one derangement) must have
        // equal row and column sums = Σ wᵢ.
        let mut d = DemandMatrix::zeros(n);
        let mut total = 0.0;
        for (w, r) in weights.iter().zip(&rots) {
            let shifted = Matching::shift(n, (r % (n - 1)) + 1).unwrap();
            let m = matching_from(n, &dst).compose(&shifted).unwrap();
            if m.is_full() {
                d.add_matching(*w, &m).unwrap();
                total += *w;
            }
        }
        prop_assert!(d.is_doubly_balanced(1e-9));
        for r in d.row_sums() {
            prop_assert!((r - total).abs() < 1e-9);
        }
    }

    #[test]
    fn bvn_reconstructs_sums_of_permutations(
        (n, dst) in arb_derangement(),
        weights in proptest::collection::vec(0.1f64..5.0, 1..5),
    ) {
        let base = matching_from(n, &dst);
        let mut d = DemandMatrix::zeros(n);
        for (k, w) in weights.iter().enumerate() {
            let m = if k == 0 {
                base.clone()
            } else {
                match base.compose(&Matching::shift(n, k % (n - 1) + 1).unwrap()) {
                    Ok(m) if m.is_full() => m,
                    _ => continue,
                }
            };
            d.add_matching(*w, &m).unwrap();
        }
        if d.total() > 0.0 {
            let b = bvn::decompose(&d, 1e-9).unwrap();
            prop_assert!(b.reconstruct().unwrap().approx_eq(&d, 1e-6));
            prop_assert!(b.terms.len() <= (n - 1) * (n - 1) + 1);
            // Every extracted weight is positive.
            prop_assert!(b.terms.iter().all(|t| t.weight > 0.0));
        }
    }

    #[test]
    fn relaxed_bvn_never_increases_entries(
        entries in proptest::collection::vec((0usize..8, 0usize..8, 0.01f64..5.0), 0..24),
    ) {
        let mut d = DemandMatrix::zeros(8);
        for (s, t, v) in entries {
            if s != t {
                d.set(s, t, v).unwrap();
            }
        }
        let b = bvn::decompose_relaxed(&d, 1e-9).unwrap();
        let rec = b.reconstruct().unwrap();
        for (s, t, v) in rec.entries() {
            prop_assert!(v <= d.get(s, t) + 1e-9, "entry ({s},{t}) grew");
        }
        // Residual + reconstructed mass = original mass.
        prop_assert!((b.residual + rec.total() - d.total()).abs() < 1e-6);
    }

    #[test]
    fn bitset_behaves_like_hashset(ops in proptest::collection::vec((0usize..100, any::<bool>()), 0..200)) {
        let mut bs = BitSet::new(100);
        let mut hs: HashSet<usize> = HashSet::new();
        for (v, _insert) in ops {
            bs.insert(v);
            hs.insert(v);
        }
        prop_assert_eq!(bs.len(), hs.len());
        for v in 0..100 {
            prop_assert_eq!(bs.contains(v), hs.contains(&v));
        }
        prop_assert_eq!(bs.is_full(), hs.len() == 100);
    }
}
