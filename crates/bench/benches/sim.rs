//! Criterion benches for the discrete-event flow-level simulator: full
//! collective executions per second, the metric that bounds how large a
//! parameter study the simulator-side validation (ablation A6) can afford.

use aps_collectives::{allreduce, alltoall};
use aps_core::SwitchSchedule;
use aps_cost::units::MIB;
use aps_cost::ReconfigModel;
use aps_fabric::CircuitSwitch;
use aps_matrix::Matching;
use aps_sim::{run_scheduled, RunConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn sim(c: &mut Criterion) {
    let cfg = RunConfig::paper_defaults();

    for (name, n, collective) in [
        (
            "sim_hd_allreduce_n64_static",
            64,
            allreduce::halving_doubling::build(64, MIB).unwrap(),
        ),
        (
            "sim_alltoall_n64_static",
            64,
            alltoall::linear_shift(64, MIB).unwrap(),
        ),
    ] {
        let ring = Matching::shift(n, 1).unwrap();
        let s = collective.schedule.num_steps();
        c.bench_function(name, |b| {
            b.iter(|| {
                let mut fab =
                    CircuitSwitch::new(ring.clone(), ReconfigModel::constant(1e-6).unwrap());
                black_box(
                    run_scheduled(
                        &mut fab,
                        &ring,
                        &collective.schedule,
                        &SwitchSchedule::all_base(s),
                        &cfg,
                    )
                    .unwrap()
                    .total_ps,
                )
            })
        });
    }

    // Matched execution exercises the reconfiguration path.
    let n = 64;
    let ring = Matching::shift(n, 1).unwrap();
    let hd = allreduce::halving_doubling::build(n, MIB).unwrap();
    let s = hd.schedule.num_steps();
    c.bench_function("sim_hd_allreduce_n64_matched", |b| {
        b.iter(|| {
            let mut fab = CircuitSwitch::new(ring.clone(), ReconfigModel::constant(1e-6).unwrap());
            black_box(
                run_scheduled(
                    &mut fab,
                    &ring,
                    &hd.schedule,
                    &SwitchSchedule::all_matched(s),
                    &cfg,
                )
                .unwrap()
                .total_ps,
            )
        })
    });
}

criterion_group!(sim_benches, sim);
criterion_main!(sim_benches);
