//! Criterion benches for the schedule solvers: exact DP vs exhaustive
//! enumeration vs the threshold heuristic, plus the multi-base DP.
//!
//! The DP is `O(s)` and the paper's pitch is that this makes optimal
//! scheduling practical; the numbers here substantiate that (the DP handles
//! a 126-step ring collective in microseconds while 2^s enumeration is
//! already hopeless at s = 16).

use aps_bench::workload::random_schedule;
use aps_core::multibase::build_multibase;
use aps_core::objective::ReconfigAccounting;
use aps_core::policies::{schedule_for, Policy};
use aps_core::{brute, dp, SwitchingProblem};
use aps_cost::{CostParams, ReconfigModel};
use aps_flow::solver::{ThetaCache, ThroughputSolver};
use aps_topology::builders;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn problem(n: usize, steps: usize) -> SwitchingProblem {
    let base = builders::ring_unidirectional(n).unwrap();
    let schedule = random_schedule(n, steps, 1e3, 1e8, 42).unwrap();
    let mut cache = ThetaCache::new(&base, ThroughputSolver::ForcedPath);
    SwitchingProblem::build(
        &base,
        &schedule,
        &mut cache,
        CostParams::paper_defaults(),
        ReconfigModel::constant(10e-6).unwrap(),
    )
    .unwrap()
}

fn solvers(c: &mut Criterion) {
    let acc = ReconfigAccounting::PaperConservative;

    let p126 = problem(64, 126);
    c.bench_function("dp_optimize_s126_n64", |b| {
        b.iter(|| black_box(dp::optimize(&p126, acc).unwrap().1.total_s()))
    });
    c.bench_function("threshold_s126_n64", |b| {
        b.iter(|| black_box(schedule_for(&p126, Policy::Threshold, acc).unwrap()))
    });

    let p16 = problem(16, 16);
    c.bench_function("dp_optimize_s16_n16", |b| {
        b.iter(|| black_box(dp::optimize(&p16, acc).unwrap().1.total_s()))
    });
    // 2^16 schedule evaluations per iteration: keep the sample count small.
    let mut slow = c.benchmark_group("exhaustive");
    slow.sample_size(10);
    slow.bench_function("exhaustive_s16_n16", |b| {
        b.iter(|| black_box(brute::optimize_exhaustive(&p16, acc).unwrap().1.total_s()))
    });
    slow.finish();

    // Multi-base DP with a 3-ring pool.
    let n = 64;
    let r1 = builders::ring_unidirectional(n).unwrap();
    let r15 = builders::coprime_rings(n, &[15]).unwrap();
    let r31 = builders::coprime_rings(n, &[31]).unwrap();
    let sched = random_schedule(n, 63, 1e4, 1e7, 7).unwrap();
    let mb = build_multibase(
        &[&r1, &r15, &r31],
        &sched,
        CostParams::paper_defaults(),
        ReconfigModel::constant(10e-6).unwrap(),
        ThroughputSolver::ForcedPath,
        0,
    )
    .unwrap();
    c.bench_function("multibase_dp_3bases_s63_n64", |b| {
        b.iter(|| black_box(mb.optimize(acc).unwrap().1))
    });
}

criterion_group!(solver, solvers);
criterion_main!(solver);
