//! Criterion benches for Figure 1: one benchmark per panel, timing the full
//! pipeline for a representative grid cell (collective construction → step
//! table with θ evaluation → DP optimization → pricing of all policies).
//!
//! These measure how expensive regenerating each heatmap cell is — i.e. the
//! runtime cost of the paper's scheduling machinery itself, which §4 flags
//! as the motivation for fast heuristics.

use aps_bench::figures::{panel, Panel};
use aps_core::objective::ReconfigAccounting;
use aps_core::policies::{evaluate_policy, Policy};
use aps_core::SwitchingProblem;
use aps_cost::units::MIB;
use aps_cost::ReconfigModel;
use aps_flow::solver::{ThetaCache, ThroughputSolver};
use aps_topology::builders;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_panel(c: &mut Criterion, p: Panel) {
    let spec = panel(p);
    let n = 64;
    let base = builders::ring_unidirectional(n).unwrap();
    let id = format!("fig1{}_cell_n64_4MiB_10us", spec.panel.letter());
    c.bench_function(&id, |b| {
        b.iter(|| {
            let collective = spec.workload.build(n, 4.0 * MIB).unwrap();
            let mut cache = ThetaCache::new(&base, ThroughputSolver::ForcedPath);
            let problem = SwitchingProblem::build(
                &base,
                &collective.schedule,
                &mut cache,
                spec.params,
                ReconfigModel::constant(10e-6).unwrap(),
            )
            .unwrap();
            let acc = ReconfigAccounting::PaperConservative;
            let opt = evaluate_policy(&problem, Policy::Optimal, acc).unwrap();
            let baseline = if spec.vs_bvn {
                evaluate_policy(&problem, Policy::AlwaysMatched, acc).unwrap()
            } else {
                evaluate_policy(&problem, Policy::StaticBase, acc).unwrap()
            };
            black_box(baseline.total_s() / opt.total_s())
        })
    });
}

fn benches(c: &mut Criterion) {
    for p in Panel::ALL {
        bench_panel(c, p);
    }
}

criterion_group!(fig1, benches);
criterion_main!(fig1);
