//! Criterion benches for the θ (maximum concurrent flow) solvers — the
//! congestion factor of eq. (3), and the component §4 wants cheap proxies
//! for.

use aps_flow::solver::{step_throughput, ThroughputSolver};
use aps_flow::{gk, ring};
use aps_matrix::Matching;
use aps_topology::builders;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn theta(c: &mut Criterion) {
    let n = 64;
    let uni = builders::ring_unidirectional(n).unwrap();
    let bi = builders::ring_bidirectional(n).unwrap();
    let m = Matching::shift(n, 7).unwrap();

    c.bench_function("theta_forced_path_uni_ring_n64", |b| {
        b.iter(|| {
            black_box(
                step_throughput(&uni, &m, ThroughputSolver::ForcedPath)
                    .unwrap()
                    .theta,
            )
        })
    });

    c.bench_function("theta_closed_form_uni_ring_n64", |b| {
        b.iter(|| black_box(ring::uni_ring_matching_theta(n, &m, 1.0).0))
    });

    c.bench_function("theta_degree_proxy_uni_ring_n64", |b| {
        b.iter(|| {
            black_box(
                step_throughput(&uni, &m, ThroughputSolver::DegreeProxy)
                    .unwrap()
                    .theta,
            )
        })
    });

    c.bench_function("theta_gk_eps10_bi_ring_n64", |b| {
        b.iter(|| {
            let coms = gk::matching_commodities(&m);
            black_box(
                gk::max_concurrent_flow(&bi, &coms, 0.1)
                    .unwrap()
                    .lower_bound,
            )
        })
    });
}

criterion_group!(theta_benches, theta);
criterion_main!(theta_benches);
