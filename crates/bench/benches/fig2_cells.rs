//! Criterion bench for Figure 2: the best-of-both comparison over a whole
//! sweep row (all reconfiguration delays at one message size), which is the
//! unit of work the transitional-regime analysis repeats.

use aps_bench::figures::{panel, run_panel, Panel};
use aps_core::sweep::{SweepCell, SweepGrid};
use aps_cost::units::{MIB, MICROS, NANOS};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn fig2_row(c: &mut Criterion) {
    let spec = panel(Panel::A);
    let grid = SweepGrid {
        reconf_delays_s: vec![100.0 * NANOS, MICROS, 10.0 * MICROS, 100.0 * MICROS],
        message_bytes: vec![4.0 * MIB],
    };
    c.bench_function("fig2_best_of_both_row_n64", |b| {
        b.iter(|| {
            let result = run_panel(&spec, 64, &grid).unwrap();
            let v = result.map(SweepCell::speedup_vs_best_of_both);
            black_box(v)
        })
    });
}

criterion_group!(fig2, fig2_row);
criterion_main!(fig2);
