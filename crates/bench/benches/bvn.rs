//! Criterion benches for Birkhoff–von Neumann decomposition — the kernel of
//! demand-aware scheduling systems the paper compares against (§2).

use aps_bench::workload::random_derangement;
use aps_matrix::{bvn, DemandMatrix};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::prelude::*;
use std::hint::black_box;

fn decompose(c: &mut Criterion) {
    c.bench_function("bvn_uniform_alltoall_n64", |b| {
        let d = DemandMatrix::uniform_all_to_all(64, 1.0);
        b.iter(|| black_box(bvn::decompose(&d, 1e-9).unwrap().terms.len()))
    });

    c.bench_function("bvn_random_balanced_n32_k16", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 32;
        let mut d = DemandMatrix::zeros(n);
        for _ in 0..16 {
            let m = random_derangement(n, &mut rng);
            d.add_matching(rng.random_range(0.5..4.0), &m).unwrap();
        }
        b.iter(|| black_box(bvn::decompose(&d, 1e-9).unwrap().terms.len()))
    });

    c.bench_function("bvn_relaxed_sparse_n64", |b| {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 64;
        let mut d = DemandMatrix::zeros(n);
        for _ in 0..n {
            let (s, t) = (rng.random_range(0..n), rng.random_range(0..n));
            if s != t {
                d.set(s, t, rng.random_range(0.1..1.0)).unwrap();
            }
        }
        b.iter(|| black_box(bvn::decompose_relaxed(&d, 1e-9).unwrap().residual))
    });
}

criterion_group!(bvn_benches, decompose);
criterion_main!(bvn_benches);
