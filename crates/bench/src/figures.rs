//! Figure 1 / Figure 2 panel definitions (§3.4 of the paper).
//!
//! Evaluation setup reproduced from the paper: `n = 64` GPUs, one 800 Gbps
//! link each, `δ = 100 ns`, base topology = ring, AllReduce via
//! (bandwidth-optimal) recursive halving-doubling and Swing, plus the
//! All-to-All transpose; sweep `α_r` (columns) × message size (rows).

use crate::output::Json;
use aps_collectives::{allreduce, alltoall, Collective, CollectiveError};
use aps_core::objective::ReconfigAccounting;
use aps_core::sweep::{run_sweep_on, SweepGrid, SweepResult};
use aps_core::CoreError;
use aps_cost::CostParams;
use aps_flow::solver::ThroughputSolver;
use aps_par::Pool;
use aps_topology::builders;

/// GPUs in the evaluated scale-up domain.
pub const PAPER_N: usize = 64;

/// One heatmap of Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Panel {
    /// 1a: OPT vs BvN, halving-doubling AllReduce, α = 100 ns.
    A,
    /// 1b: OPT vs BvN, halving-doubling AllReduce, α = 10 µs.
    B,
    /// 1c: OPT vs BvN, Swing AllReduce, α = 100 ns.
    C,
    /// 1d: OPT vs BvN, All-to-All, α = 100 ns.
    D,
    /// 1e: OPT vs static ring, halving-doubling AllReduce, α = 100 ns.
    E,
    /// 1f: OPT vs static ring, halving-doubling AllReduce, α = 10 µs.
    F,
    /// 1g: OPT vs static ring, Swing AllReduce, α = 100 ns.
    G,
    /// 1h: OPT vs static ring, All-to-All, α = 100 ns.
    H,
}

impl Panel {
    /// All panels, figure order.
    pub const ALL: [Panel; 8] = [
        Panel::A,
        Panel::B,
        Panel::C,
        Panel::D,
        Panel::E,
        Panel::F,
        Panel::G,
        Panel::H,
    ];

    /// Parses a panel letter.
    pub fn parse(s: &str) -> Option<Panel> {
        match s.to_ascii_lowercase().as_str() {
            "a" => Some(Panel::A),
            "b" => Some(Panel::B),
            "c" => Some(Panel::C),
            "d" => Some(Panel::D),
            "e" => Some(Panel::E),
            "f" => Some(Panel::F),
            "g" => Some(Panel::G),
            "h" => Some(Panel::H),
            _ => None,
        }
    }

    /// Lowercase letter for file names.
    pub fn letter(self) -> char {
        match self {
            Panel::A => 'a',
            Panel::B => 'b',
            Panel::C => 'c',
            Panel::D => 'd',
            Panel::E => 'e',
            Panel::F => 'f',
            Panel::G => 'g',
            Panel::H => 'h',
        }
    }
}

/// Which collective a panel sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Recursive halving-doubling AllReduce (the paper's bandwidth-optimal
    /// "recursive doubling").
    HalvingDoubling,
    /// Swing AllReduce.
    Swing,
    /// Linear-shift All-to-All (transpose).
    AllToAll,
}

impl Workload {
    /// Builds the collective for a message size.
    ///
    /// # Errors
    ///
    /// Propagates collective construction errors.
    pub fn build(self, n: usize, bytes: f64) -> Result<Collective, CollectiveError> {
        match self {
            Workload::HalvingDoubling => allreduce::halving_doubling::build(n, bytes),
            Workload::Swing => allreduce::swing::build(n, bytes),
            Workload::AllToAll => alltoall::linear_shift(n, bytes),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Workload::HalvingDoubling => "halving-doubling AllReduce",
            Workload::Swing => "Swing AllReduce",
            Workload::AllToAll => "All-to-All (linear shift)",
        }
    }
}

/// Full specification of one panel.
#[derive(Debug, Clone, Copy)]
pub struct PanelSpec {
    /// Which figure panel.
    pub panel: Panel,
    /// The collective under test.
    pub workload: Workload,
    /// Cost parameters (α differs between panels).
    pub params: CostParams,
    /// `true` → report speedup vs the BvN baseline (top row); `false` → vs
    /// the static ring (bottom row).
    pub vs_bvn: bool,
}

impl PanelSpec {
    /// Human-readable title matching the paper's caption.
    pub fn title(&self) -> String {
        format!(
            "Figure 1{}: speedup of OPT vs {} — {}, α = {}",
            self.panel.letter(),
            if self.vs_bvn {
                "BvN schedule"
            } else {
                "static ring"
            },
            self.workload.name(),
            aps_cost::units::format_time(self.params.alpha_s),
        )
    }
}

/// The specification of a Figure 1 panel.
pub fn panel(p: Panel) -> PanelSpec {
    let low = CostParams::paper_defaults();
    let high = CostParams::paper_high_alpha();
    match p {
        Panel::A => PanelSpec {
            panel: p,
            workload: Workload::HalvingDoubling,
            params: low,
            vs_bvn: true,
        },
        Panel::B => PanelSpec {
            panel: p,
            workload: Workload::HalvingDoubling,
            params: high,
            vs_bvn: true,
        },
        Panel::C => PanelSpec {
            panel: p,
            workload: Workload::Swing,
            params: low,
            vs_bvn: true,
        },
        Panel::D => PanelSpec {
            panel: p,
            workload: Workload::AllToAll,
            params: low,
            vs_bvn: true,
        },
        Panel::E => PanelSpec {
            panel: p,
            workload: Workload::HalvingDoubling,
            params: low,
            vs_bvn: false,
        },
        Panel::F => PanelSpec {
            panel: p,
            workload: Workload::HalvingDoubling,
            params: high,
            vs_bvn: false,
        },
        Panel::G => PanelSpec {
            panel: p,
            workload: Workload::Swing,
            params: low,
            vs_bvn: false,
        },
        Panel::H => PanelSpec {
            panel: p,
            workload: Workload::AllToAll,
            params: low,
            vs_bvn: false,
        },
    }
}

/// Runs one panel's sweep on the paper's setup (`n = 64`, unidirectional
/// ring base, exact forced-path θ) with a pool sized from `APS_THREADS`.
///
/// # Errors
///
/// Propagates sweep errors.
pub fn run_panel(spec: &PanelSpec, n: usize, grid: &SweepGrid) -> Result<SweepResult, CoreError> {
    run_panel_on(&Pool::from_env(), spec, n, grid)
}

/// [`run_panel`] on an explicit pool.
///
/// # Errors
///
/// Propagates sweep errors.
pub fn run_panel_on(
    pool: &Pool,
    spec: &PanelSpec,
    n: usize,
    grid: &SweepGrid,
) -> Result<SweepResult, CoreError> {
    let base = builders::ring_unidirectional(n).expect("n >= 2");
    run_sweep_on(
        pool,
        &base,
        |m| spec.workload.build(n, m),
        spec.params,
        grid,
        ReconfigAccounting::PaperConservative,
        ThroughputSolver::ForcedPath,
    )
}

/// The sweep axes as a JSON object (`data.grid` of a bench report).
pub fn grid_json(grid: &SweepGrid) -> Json {
    Json::obj([
        (
            "reconf_delays_s",
            Json::nums(grid.reconf_delays_s.iter().copied()),
        ),
        (
            "message_bytes",
            Json::nums(grid.message_bytes.iter().copied()),
        ),
    ])
}

/// Per-policy completion times a sweep cell contributes to a report, in
/// [`CELL_POLICIES`] order. These are the names of the controllers behind
/// each cell column ([`aps_core::policies::Policy::controller`]):
/// `Static`, `AlwaysReconfigure`, `DpPlanned`, `Threshold`.
pub const CELL_POLICIES: [&str; 4] = ["static", "bvn", "opt", "threshold"];

/// One panel's sweep as a JSON object: the workload, α, and the row-major
/// `cells_s[msg][α_r]` grid of `[static, bvn, opt, threshold]` completion
/// times.
pub fn panel_json(spec: &PanelSpec, result: &SweepResult) -> Json {
    let cells = result
        .cells
        .iter()
        .map(|row| {
            Json::Arr(
                row.iter()
                    .map(|c| Json::nums([c.t_static_s, c.t_bvn_s, c.t_opt_s, c.t_threshold_s]))
                    .collect(),
            )
        })
        .collect();
    Json::obj([
        ("panel", Json::Str(spec.panel.letter().to_string())),
        ("workload", Json::Str(spec.workload.name().to_string())),
        ("alpha_s", Json::Num(spec.params.alpha_s)),
        ("vs_bvn", Json::Bool(spec.vs_bvn)),
        (
            "policies",
            Json::Arr(
                CELL_POLICIES
                    .iter()
                    .map(|p| Json::Str((*p).to_string()))
                    .collect(),
            ),
        ),
        ("cells_s", Json::Arr(cells)),
    ])
}

/// θ-cache counters as a JSON object (`data.theta_cache`).
pub fn theta_stats_json(stats: &aps_flow::CacheStats) -> Json {
    Json::obj([
        ("hits", Json::UInt(stats.hits)),
        ("misses", Json::UInt(stats.misses)),
        ("entries", Json::UInt(stats.entries as u64)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use aps_core::sweep::SweepCell;

    #[test]
    fn panel_parsing_roundtrips() {
        for p in Panel::ALL {
            assert_eq!(Panel::parse(&p.letter().to_string()), Some(p));
        }
        assert_eq!(Panel::parse("z"), None);
    }

    #[test]
    fn titles_mention_workload_and_alpha() {
        let t = panel(Panel::B).title();
        assert!(t.contains("halving-doubling"));
        assert!(t.contains("10 µs"));
        assert!(t.contains("BvN"));
        let t = panel(Panel::H).title();
        assert!(t.contains("static ring"));
        assert!(t.contains("All-to-All"));
    }

    #[test]
    fn small_panel_run_has_expected_regimes() {
        // n = 16 keeps the test quick; regime structure is the same.
        let spec = panel(Panel::A);
        let grid = SweepGrid::small();
        let r = run_panel(&spec, 16, &grid).unwrap();
        // Speedups vs BvN grow toward high α_r / small messages.
        let m = r.map(SweepCell::speedup_vs_bvn);
        assert!(m[0][2] > m[2][0]);
        assert!(m[0][2] > 5.0);
        // And everything is ≥ 1: OPT dominates.
        assert!(m.iter().flatten().all(|&v| v >= 1.0 - 1e-12));
    }
}
