//! Research-agenda ablations (A1–A7 and A9 in DESIGN.md; A8, the multi-port
//! extension, lives in `aps-core::multiport` and its property tests).
//!
//! ```text
//! cargo run -p aps-bench --release --bin ablations -- <which>
//! ```
//!
//! where `<which>` is one of `heuristic`, `multibase`, `theta-proxy`,
//! `vardelay`, `overlap`, `sim-validate`, `propagation`, `basetopo`, or `all`.
//!
//! Besides the per-panel console tables and `ablation_*.csv` dumps, every
//! run appends its headline metrics to the append-only ablation registry
//! (`results/ablation_registry.csv`, plan names like `a1-heuristic`) and
//! emits a versioned `results/bench_ablations.json` report — so the A-panel
//! numbers are visible to `perfgate compare`/`gate` instead of scrolling
//! away in the job log.

use aps_ablate::{append_rows, fnv1a_64, RegistryRow};
use aps_bench::cli::emit_bench_report;
use aps_bench::figures::{panel, run_panel, Panel};
use aps_bench::output::{write_result, Json};
use aps_collectives::{allreduce, alltoall, broadcast};
use aps_core::multibase::build_multibase;
use aps_core::objective::ReconfigAccounting;
use aps_core::policies::{evaluate_policy, Policy};
use aps_core::sweep::{SweepCell, SweepGrid};
use aps_core::{SwitchSchedule, SwitchingProblem};
use aps_cost::units::{format_bytes, format_time, MIB, NANOS};
use aps_cost::{CostParams, ReconfigModel};
use aps_flow::solver::{ThetaCache, ThroughputSolver};
use aps_matrix::Matching;
use aps_par::Pool;
use aps_sim::{run_trial_batch, ComputeModel, RunConfig, Trial};
use aps_topology::builders;

/// Headline metrics one panel contributes to the ablation registry and
/// the versioned bench report: `(factors, kpi, value)` rows under a
/// per-panel plan name (`a1-heuristic`, `a2-multibase`, …).
struct PanelSummary {
    plan: &'static str,
    rows: Vec<(String, String, f64)>,
}

impl PanelSummary {
    fn new(plan: &'static str) -> Self {
        PanelSummary {
            plan,
            rows: Vec::new(),
        }
    }

    /// Records one metric. Commas in factor values (e.g. the base-pool
    /// label `{1,31}`) are swapped for `+` so the row stays encodable in
    /// the unquoted registry CSV.
    fn push(&mut self, factors: &str, kpi: &str, value: f64) {
        self.rows
            .push((factors.replace(',', "+"), kpi.to_string(), value));
    }

    /// Design hash over the plan name and the `(factors, kpi)` keys —
    /// stable across value changes, new only when the panel's shape
    /// changes. Plays the role [`aps_ablate::AblationPlan::plan_hash`]
    /// plays for declarative plans.
    fn design_hash(&self) -> String {
        let mut desc = String::from(self.plan);
        for (factors, kpi, _) in &self.rows {
            desc.push('|');
            desc.push_str(factors);
            desc.push(';');
            desc.push_str(kpi);
        }
        format!("{:016x}", fnv1a_64(desc.as_bytes()))
    }

    /// Registry rows for this panel; rows sharing a factor assignment
    /// share a cell index, in order of first appearance.
    fn registry_rows(&self, commit: &str) -> Vec<RegistryRow> {
        let hash = self.design_hash();
        let mut cells: Vec<&str> = Vec::new();
        self.rows
            .iter()
            .map(|(factors, kpi, value)| {
                let cell = cells.iter().position(|f| f == factors).unwrap_or_else(|| {
                    cells.push(factors);
                    cells.len() - 1
                });
                RegistryRow {
                    commit: commit.to_string(),
                    plan: self.plan.to_string(),
                    plan_hash: hash.clone(),
                    cell,
                    factors: factors.clone(),
                    kpi: kpi.clone(),
                    value: *value,
                }
            })
            .collect()
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("plan", Json::Str(self.plan.to_string())),
            ("plan_hash", Json::Str(self.design_hash())),
            (
                "rows",
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|(factors, kpi, value)| {
                            Json::obj([
                                ("factors", Json::Str(factors.clone())),
                                ("kpi", Json::Str(kpi.clone())),
                                ("value", Json::Num(*value)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Appends every panel's rows to the registry and writes the versioned
/// `bench_ablations.json` report (deterministic `data` at any
/// `APS_THREADS`, like every other bench report).
fn record_panels(which: &str, summaries: &[PanelSummary], wall_s: f64) {
    let commit = std::env::var("GITHUB_SHA").unwrap_or_else(|_| "local".to_string());
    let rows: Vec<RegistryRow> = summaries
        .iter()
        .flat_map(|s| s.registry_rows(&commit))
        .collect();
    let registry =
        std::path::Path::new(aps_bench::output::RESULTS_DIR).join("ablation_registry.csv");
    std::fs::create_dir_all(aps_bench::output::RESULTS_DIR).expect("results dir");
    append_rows(&registry, &rows).expect("registry append");
    println!(
        "registry: appended {} rows to {} (commit {commit})",
        rows.len(),
        registry.display()
    );
    let data = Json::obj([
        ("which", Json::Str(which.to_string())),
        (
            "panels",
            Json::Arr(summaries.iter().map(PanelSummary::to_json).collect()),
        ),
    ]);
    emit_bench_report("ablations", &Pool::from_env(), wall_s, data);
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let started = std::time::Instant::now();
    let summaries = match which.as_str() {
        "heuristic" => vec![heuristic()],
        "multibase" => vec![multibase()],
        "theta-proxy" => vec![theta_proxy()],
        "vardelay" => vec![vardelay()],
        "overlap" => vec![overlap()],
        "sim-validate" => vec![sim_validate()],
        "propagation" => vec![propagation()],
        "basetopo" => vec![basetopo()],
        "all" => vec![
            heuristic(),
            multibase(),
            theta_proxy(),
            vardelay(),
            overlap(),
            sim_validate(),
            propagation(),
            basetopo(),
        ],
        other => {
            eprintln!(
                "unknown ablation '{other}' (expected heuristic | multibase | theta-proxy | \
                 vardelay | overlap | sim-validate | propagation | basetopo | all)"
            );
            std::process::exit(2);
        }
    };
    record_panels(&which, &summaries, started.elapsed().as_secs_f64());
    println!(
        "done in {:.3} s ({} worker thread(s))",
        started.elapsed().as_secs_f64(),
        Pool::from_env().threads()
    );
}

/// A1 — threshold heuristic vs exact DP across the Figure-1 grid.
fn heuristic() -> PanelSummary {
    println!("== A1: threshold heuristic optimality gap (n = 64, halving-doubling) ==");
    let result =
        run_panel(&panel(Panel::A), 64, &SweepGrid::paper_default()).expect("sweep failed");
    let gaps = result.map(SweepCell::threshold_gap);
    let flat: Vec<f64> = gaps.iter().flatten().copied().collect();
    let worst = flat.iter().cloned().fold(1.0, f64::max);
    let mean = flat.iter().sum::<f64>() / flat.len() as f64;
    let exact = flat.iter().filter(|&&g| g <= 1.0 + 1e-6).count();
    println!(
        "  cells: {}   heuristic exactly optimal: {}   mean gap: {:.4}x   worst gap: {:.4}x",
        flat.len(),
        exact,
        mean,
        worst
    );
    let csv = aps_core::analysis::to_csv(&result.grid, &gaps);
    if let Ok(p) = write_result("ablation_heuristic.csv", &csv) {
        println!("  → {}\n", p.display());
    }
    let mut s = PanelSummary::new("a1-heuristic");
    let factors = "n=64;workload=hd-allreduce";
    s.push(factors, "cells", flat.len() as f64);
    s.push(
        factors,
        "exact_optimal_fraction",
        exact as f64 / flat.len() as f64,
    );
    s.push(factors, "mean_gap", mean);
    s.push(factors, "worst_gap", worst);
    s
}

/// A2 — co-prime ring pools vs a single ring base (All-to-All).
fn multibase() -> PanelSummary {
    println!("== A2: multi-base co-prime ring pools (n = 64, All-to-All, 16 MiB) ==");
    let n = 64;
    let m = 16.0 * MIB;
    let c = alltoall::linear_shift(n, m).expect("collective");
    let ring1 = builders::ring_unidirectional(n).unwrap();
    let r31 = builders::coprime_rings(n, &[31]).unwrap();
    let r15 = builders::coprime_rings(n, &[15]).unwrap();
    let mut csv = String::from("alpha_r_s,pool,completion_s\n");
    println!(
        "  {:>10} | {:>12} {:>12} {:>12}",
        "α_r", "{1}", "{1,31}", "{1,15,31}"
    );
    let alphas = [100.0 * NANOS, 1e-6, 1e-5, 1e-4, 1e-3];
    let base_pools = [
        ("{1}", vec![&ring1]),
        ("{1,31}", vec![&ring1, &r31]),
        ("{1,15,31}", vec![&ring1, &r15, &r31]),
    ];
    // Every α_r × base-pool cell is an independent optimization.
    let tasks: Vec<(f64, &str, &Vec<&aps_topology::Topology>)> = alphas
        .iter()
        .flat_map(|&a| {
            base_pools
                .iter()
                .map(move |(name, bases)| (a, *name, bases))
        })
        .collect();
    let times = Pool::from_env().map(&tasks, |_, &(alpha_r, _, bases)| {
        let mb = build_multibase(
            bases,
            &c.schedule,
            CostParams::paper_defaults(),
            ReconfigModel::constant(alpha_r).expect("α_r"),
            ThroughputSolver::ForcedPath,
            0,
        )
        .expect("multibase");
        let (_, t) = mb
            .optimize(ReconfigAccounting::PaperConservative)
            .expect("opt");
        t
    });
    let mut s = PanelSummary::new("a2-multibase");
    for (ai, &alpha_r) in alphas.iter().enumerate() {
        let row = &times[ai * base_pools.len()..(ai + 1) * base_pools.len()];
        for ((name, _), t) in base_pools.iter().zip(row) {
            csv.push_str(&format!("{alpha_r},{name},{t}\n"));
            s.push(
                &format!("alpha_r_s={alpha_r};pool={name}"),
                "completion_s",
                *t,
            );
        }
        println!(
            "  {:>10} | {:>12.6} {:>12.6} {:>12.6}",
            format_time(alpha_r),
            row[0],
            row[1],
            row[2]
        );
    }
    if let Ok(p) = write_result("ablation_multibase.csv", &csv) {
        println!("  → {}\n", p.display());
    }
    s
}

/// A3 — degree-proxy θ vs exact θ: decision agreement and cost error.
fn theta_proxy() -> PanelSummary {
    println!("== A3: degree-proxy congestion factor vs exact θ (n = 64) ==");
    let n = 64;
    let base = builders::ring_unidirectional(n).unwrap();
    let grid = SweepGrid::paper_default();
    let mut csv = String::from("workload,agreement,worst_cost_penalty\n");
    let workloads = [
        ("halving-doubling", allreduce::Algorithm::HalvingDoubling),
        ("swing", allreduce::Algorithm::Swing),
    ];
    // One task per workload × message size. The step matchings repeat at
    // every message size, so price each unique matching once across the
    // pool and give every worker a clone of the warmed caches.
    let pool = Pool::from_env();
    let tasks: Vec<(usize, aps_collectives::Collective)> = workloads
        .iter()
        .enumerate()
        .flat_map(|(wi, (_, alg))| {
            grid.message_bytes
                .iter()
                .map(move |&m| (wi, alg.build(n, m).expect("collective")))
        })
        .collect();
    let all_matchings = || {
        tasks
            .iter()
            .flat_map(|(_, c)| c.schedule.steps().iter().map(|s| &s.matching))
    };
    let warm_exact = ThetaCache::warm(&pool, &base, ThroughputSolver::ForcedPath, all_matchings())
        .expect("θ pricing");
    let warm_proxy = ThetaCache::warm(&pool, &base, ThroughputSolver::DegreeProxy, all_matchings())
        .expect("θ pricing");
    let (per_task, _) = pool.map_with(
        &tasks,
        || (warm_exact.clone(), warm_proxy.clone()),
        |(exact_cache, proxy_cache), _, (wi, c)| {
            let wi = *wi;
            let mut agree = 0usize;
            let mut cells = 0usize;
            let mut worst_penalty = 1.0f64;
            for &alpha_r in &grid.reconf_delays_s {
                let reconfig = ReconfigModel::constant(alpha_r).unwrap();
                let exact = SwitchingProblem::build(
                    &base,
                    &c.schedule,
                    exact_cache,
                    CostParams::paper_defaults(),
                    reconfig,
                )
                .expect("problem");
                let proxy = SwitchingProblem::build(
                    &base,
                    &c.schedule,
                    proxy_cache,
                    CostParams::paper_defaults(),
                    reconfig,
                )
                .expect("problem");
                let acc = ReconfigAccounting::PaperConservative;
                let (sched_exact, cost_exact) = aps_core::dp::optimize(&exact, acc).unwrap();
                let (sched_proxy, _) = aps_core::dp::optimize(&proxy, acc).unwrap();
                cells += 1;
                if sched_exact == sched_proxy {
                    agree += 1;
                } else {
                    // Price the proxy's decisions with the exact θ.
                    let priced = aps_core::objective::evaluate(&exact, &sched_proxy, acc).unwrap();
                    worst_penalty = worst_penalty.max(priced.total_s() / cost_exact.total_s());
                }
            }
            (wi, agree, cells, worst_penalty)
        },
    );
    let mut s = PanelSummary::new("a3-theta-proxy");
    for (wi, (name, _)) in workloads.iter().enumerate() {
        let mut agree = 0usize;
        let mut cells = 0usize;
        let mut worst_penalty = 1.0f64;
        for &(twi, a, c, w) in per_task.iter().filter(|t| t.0 == wi) {
            debug_assert_eq!(twi, wi);
            agree += a;
            cells += c;
            worst_penalty = worst_penalty.max(w);
        }
        let pct = 100.0 * agree as f64 / cells as f64;
        println!(
            "  {name:>18}: decisions agree {pct:.1}% of cells; worst cost penalty {worst_penalty:.3}x"
        );
        csv.push_str(&format!("{name},{pct},{worst_penalty}\n"));
        let factors = format!("workload={name}");
        s.push(&factors, "agreement_pct", pct);
        s.push(&factors, "worst_cost_penalty", worst_penalty);
    }
    if let Ok(p) = write_result("ablation_theta_proxy.csv", &csv) {
        println!("  → {}\n", p.display());
    }
    s
}

/// A4 — per-port-affine reconfiguration delays vs a constant α_r.
fn vardelay() -> PanelSummary {
    println!("== A4: variable (per-port) reconfiguration delay (n = 64, broadcast) ==");
    let n = 64;
    let m = 64.0 * MIB;
    // Binomial broadcast: early steps move 1–2 ports, late steps half the
    // fabric — exactly where per-port pricing diverges from constant.
    let c = broadcast::binomial(n, 0, m).expect("collective");
    let base = builders::ring_unidirectional(n).unwrap();
    let fixed = 1e-6;
    let per_port = 200.0 * NANOS;
    let constant_equiv = fixed + per_port * n as f64;
    let mut csv = String::from("model,policy,completion_s\n");
    let mut s = PanelSummary::new("a4-vardelay");
    for (name, reconfig, acc) in [
        (
            "constant(worst-case)",
            ReconfigModel::constant(constant_equiv).unwrap(),
            ReconfigAccounting::PaperConservative,
        ),
        (
            "per-port affine",
            ReconfigModel::per_port(fixed, per_port).unwrap(),
            ReconfigAccounting::PhysicalDiff,
        ),
    ] {
        let mut cache = ThetaCache::new(&base, ThroughputSolver::ForcedPath);
        let p = SwitchingProblem::build(
            &base,
            &c.schedule,
            &mut cache,
            CostParams::paper_defaults(),
            reconfig,
        )
        .expect("problem");
        for policy in [Policy::StaticBase, Policy::AlwaysMatched, Policy::Optimal] {
            let r = evaluate_policy(&p, policy, acc).unwrap();
            println!("  {name:>22} | {:>9}: {:.6} s", policy.name(), r.total_s());
            csv.push_str(&format!("{name},{},{}\n", policy.name(), r.total_s()));
            s.push(
                &format!("model={name};policy={}", policy.name()),
                "completion_s",
                r.total_s(),
            );
        }
    }
    if let Ok(p) = write_result("ablation_vardelay.csv", &csv) {
        println!("  → {}\n", p.display());
    }
    s
}

/// A5 — overlapping reconfiguration with computation (simulator).
fn overlap() -> PanelSummary {
    println!("== A5: overlapping reconfiguration with compute (n = 16, halving-doubling) ==");
    let n = 16;
    let m = 64.0 * MIB;
    let c = allreduce::halving_doubling::build(n, m).expect("collective");
    let s = c.schedule.num_steps();
    let ring = Matching::shift(n, 1).unwrap();
    let mut csv = String::from("compute_ns_per_byte,serial_s,overlap_s,saved_s\n");
    println!(
        "  {:>16} | {:>12} {:>12} {:>10}",
        "compute/byte", "serial", "overlap", "saved"
    );
    let compute_models = [0.0, 0.1, 0.5, 2.0];
    // Serial/overlapped pairs as one trial batch on the pool.
    let trials: Vec<Trial> = compute_models
        .iter()
        .flat_map(|&per_byte_ns| {
            [false, true].map(|overlap_flag| Trial {
                base_config: ring.clone(),
                reconfig: ReconfigModel::constant(10e-6).unwrap(),
                schedule: c.schedule.clone(),
                switch_schedule: SwitchSchedule::all_matched(s),
                config: RunConfig {
                    compute: (per_byte_ns > 0.0).then_some(ComputeModel {
                        per_byte_s: per_byte_ns * 1e-9,
                    }),
                    overlap_reconfig_with_compute: overlap_flag,
                    ..RunConfig::paper_defaults()
                },
            })
        })
        .collect();
    let reports = run_trial_batch(&Pool::from_env(), &trials).expect("sim");
    let mut s = PanelSummary::new("a5-overlap");
    for (pi, &per_byte_ns) in compute_models.iter().enumerate() {
        let serial = reports[2 * pi].total_s();
        let overlapped = reports[2 * pi + 1].total_s();
        println!(
            "  {per_byte_ns:>13} ns | {serial:>12.6} {overlapped:>12.6} {:>10.6}",
            serial - overlapped
        );
        csv.push_str(&format!(
            "{per_byte_ns},{serial},{overlapped},{}\n",
            serial - overlapped
        ));
        let factors = format!("compute_ns_per_byte={per_byte_ns}");
        s.push(&factors, "serial_s", serial);
        s.push(&factors, "overlap_s", overlapped);
        s.push(&factors, "saved_s", serial - overlapped);
    }
    if let Ok(p) = write_result("ablation_overlap.csv", &csv) {
        println!("  → {}\n", p.display());
    }
    s
}

/// A6 — analytic model vs event simulator.
fn sim_validate() -> PanelSummary {
    println!("== A6: analytic model vs flow-level simulator (n = 16) ==");
    let n = 16;
    let base = builders::ring_unidirectional(n).unwrap();
    let ring = Matching::shift(n, 1).unwrap();
    let mut csv = String::from("workload,policy,model_s,sim_s,rel_diff\n");
    let pool = Pool::from_env();
    let workloads = [
        ("ring-allreduce", allreduce::ring::build(n, MIB).unwrap()),
        (
            "halving-doubling",
            allreduce::halving_doubling::build(n, MIB).unwrap(),
        ),
        ("swing", allreduce::swing::build(n, MIB).unwrap()),
        ("alltoall", alltoall::linear_shift(n, MIB).unwrap()),
    ];
    let policies = [Policy::StaticBase, Policy::AlwaysMatched, Policy::Optimal];
    // The simulator is physical: compare under PhysicalDiff.
    let acc = ReconfigAccounting::PhysicalDiff;
    // Phase 1 — analytic side, one task per workload (private θ cache):
    // the policy switch schedules and their model-predicted times.
    let analytic = pool.map(&workloads, |_, (_, c)| {
        let mut cache = ThetaCache::new(&base, ThroughputSolver::ForcedPath);
        let problem = SwitchingProblem::build(
            &base,
            &c.schedule,
            &mut cache,
            CostParams::paper_defaults(),
            ReconfigModel::constant(5e-6).unwrap(),
        )
        .expect("problem");
        policies
            .map(|policy| {
                let schedule = aps_core::policies::schedule_for(&problem, policy, acc).unwrap();
                let model = aps_core::objective::evaluate(&problem, &schedule, acc)
                    .unwrap()
                    .total_s();
                (schedule, model)
            })
            .to_vec()
    });
    // Phase 2 — one simulator trial per workload × policy, batched.
    let trials: Vec<Trial> = workloads
        .iter()
        .zip(&analytic)
        .flat_map(|((_, c), per_policy)| {
            per_policy.iter().map(|(schedule, _)| Trial {
                base_config: ring.clone(),
                reconfig: ReconfigModel::constant(5e-6).unwrap(),
                schedule: c.schedule.clone(),
                switch_schedule: schedule.clone(),
                config: RunConfig::paper_defaults(),
            })
        })
        .collect();
    let reports = run_trial_batch(&pool, &trials).expect("sim");
    let mut s = PanelSummary::new("a6-sim-validate");
    for (wi, (name, _)) in workloads.iter().enumerate() {
        for (pi, policy) in policies.iter().enumerate() {
            let model = analytic[wi][pi].1;
            let sim = reports[wi * policies.len() + pi].total_s();
            let rel = (sim - model).abs() / model;
            println!(
                "  {name:>18} | {:>9}: model {model:.6e}  sim {sim:.6e}  Δ {:.3}%",
                policy.name(),
                rel * 100.0
            );
            csv.push_str(&format!("{name},{},{model},{sim},{rel}\n", policy.name()));
            let factors = format!("workload={name};policy={}", policy.name());
            s.push(&factors, "model_s", model);
            s.push(&factors, "sim_s", sim);
            s.push(&factors, "rel_diff", rel);
        }
    }
    if let Ok(p) = write_result("ablation_sim_validate.csv", &csv) {
        println!("  → {}\n", p.display());
    }
    s
}

/// A7 — propagation-delay regimes: which AllReduce wins on a static ring,
/// and how reconfiguration changes the answer (§4 "deeper understanding").
fn propagation() -> PanelSummary {
    println!("== A7: propagation-delay regimes (n = 64, 64 KiB AllReduce) ==");
    let n = 64;
    let m = 65536.0;
    let base = builders::ring_unidirectional(n).unwrap();
    let mut csv = String::from("delta_ns,algorithm,static_s,opt_s\n");
    println!(
        "  {:>8} | {:>18} {:>14} {:>14}",
        "δ", "algorithm", "static", "opt(α_r=1µs)"
    );
    let deltas = [10.0, 100.0, 1000.0];
    let tasks: Vec<(f64, allreduce::Algorithm)> = deltas
        .iter()
        .flat_map(|&d| allreduce::Algorithm::ALL.iter().map(move |&alg| (d, alg)))
        .collect();
    // θ is independent of δ, so a worker's cache serves its whole chunk.
    let (rows, _) = Pool::from_env().map_with(
        &tasks,
        || ThetaCache::new(&base, ThroughputSolver::ForcedPath),
        |cache, _, &(delta_ns, alg)| {
            let c = alg.build(n, m).expect("collective");
            let params = CostParams::new(100.0 * NANOS, 800.0, delta_ns * 1e-9).unwrap();
            let p = SwitchingProblem::build(
                &base,
                &c.schedule,
                cache,
                params,
                ReconfigModel::constant(1e-6).unwrap(),
            )
            .expect("problem");
            let acc = ReconfigAccounting::PaperConservative;
            let st = evaluate_policy(&p, Policy::StaticBase, acc)
                .unwrap()
                .total_s();
            let opt = evaluate_policy(&p, Policy::Optimal, acc).unwrap().total_s();
            (st, opt)
        },
    );
    let mut s = PanelSummary::new("a7-propagation");
    for (&(delta_ns, alg), &(st, opt)) in tasks.iter().zip(&rows) {
        println!(
            "  {:>8} | {:>18} {st:>14.6e} {opt:>14.6e}",
            format_time(delta_ns * 1e-9),
            alg.name()
        );
        csv.push_str(&format!("{delta_ns},{},{st},{opt}\n", alg.name()));
        let factors = format!("delta_ns={delta_ns};algorithm={}", alg.name());
        s.push(&factors, "static_s", st);
        s.push(&factors, "opt_s", opt);
    }
    println!("  ({} per node, {} GPUs)", format_bytes(m), n);
    if let Ok(p) = write_result("ablation_propagation.csv", &csv) {
        println!("  → {}\n", p.display());
    }
    s
}

/// A9 — base-topology choice: the halo-exchange workload on a ring base vs
/// a 2-D torus base (where every neighbor exchange is a single hop), with
/// forced-path vs splittable (Garg–Könemann) θ on the torus.
fn basetopo() -> PanelSummary {
    use aps_collectives::stencil;
    println!("== A9: base-topology choice for 8x8 halo exchange (1 MiB strips) ==");
    let (rows, cols) = (8, 8);
    let n = rows * cols;
    let c = stencil::halo_2d(rows, cols, MIB).expect("halo");
    let ring = builders::ring_unidirectional(n).unwrap();
    let torus = builders::torus_2d(rows, cols).unwrap();
    let mut csv = String::from("base,solver,alpha_r_s,static_s,opt_s\n");
    println!(
        "  {:>16} {:>12} {:>10} | {:>12} {:>12}",
        "base", "theta solver", "alpha_r", "static", "opt"
    );
    let configs = [
        ("uni-ring", &ring, ThroughputSolver::ForcedPath),
        ("torus 8x8", &torus, ThroughputSolver::ForcedPath),
        (
            "torus 8x8",
            &torus,
            ThroughputSolver::GargKonemann { epsilon: 0.08 },
        ),
    ];
    let alphas = [1e-6, 1e-4];
    let tasks: Vec<(usize, f64)> = (0..configs.len())
        .flat_map(|ci| alphas.iter().map(move |&a| (ci, a)))
        .collect();
    let rows = Pool::from_env().map(&tasks, |_, &(ci, alpha_r)| {
        let (_, base, solver) = configs[ci];
        let mut cache = ThetaCache::new(base, solver);
        let p = SwitchingProblem::build(
            base,
            &c.schedule,
            &mut cache,
            CostParams::paper_defaults(),
            ReconfigModel::constant(alpha_r).unwrap(),
        )
        .expect("problem");
        let acc = ReconfigAccounting::PaperConservative;
        let st = evaluate_policy(&p, Policy::StaticBase, acc)
            .unwrap()
            .total_s();
        let opt = evaluate_policy(&p, Policy::Optimal, acc).unwrap().total_s();
        (st, opt)
    });
    let mut s = PanelSummary::new("a9-basetopo");
    for (&(ci, alpha_r), &(st, opt)) in tasks.iter().zip(&rows) {
        let (bname, _, solver) = configs[ci];
        let sname = match solver {
            ThroughputSolver::ForcedPath => "forced",
            ThroughputSolver::GargKonemann { .. } => "gk(0.08)",
            ThroughputSolver::DegreeProxy => "proxy",
        };
        println!(
            "  {bname:>16} {sname:>12} {:>10} | {st:>12.6e} {opt:>12.6e}",
            format_time(alpha_r)
        );
        csv.push_str(&format!("{bname},{sname},{alpha_r},{st},{opt}\n"));
        let factors = format!("base={bname};solver={sname};alpha_r_s={alpha_r}");
        s.push(&factors, "static_s", st);
        s.push(&factors, "opt_s", opt);
    }
    println!(
        "  (a torus base makes every halo step single-hop: static wins regardless of α_r,\n   while the ring base must reconfigure the column shifts)"
    );
    if let Ok(p) = write_result("ablation_basetopo.csv", &csv) {
        println!("  → {}\n", p.display());
    }
    s
}
