//! Heterogeneous-fabric benchmark: the `hetero-hybrid` multi-tenant mix
//! on three fabric technologies — all-electrical crossbar, all-optical
//! circuit switch, and the split hybrid — under the static, DP-planned
//! and greedy controllers.
//!
//! Every cell plans each tenant's switch schedule with the cell's
//! controller, then executes all tenants on one shared fabric of the
//! cell's kind (FCFS controller arbitration). Cells report scenario
//! makespan, per-tenant finish/reconfiguration/transfer/arbitration
//! splits, and speedup over the static controller on the same fabric.
//!
//! Usage:
//!
//! ```text
//! cargo run -p aps-bench --release --bin fig_hetero [-- --bytes 1048576 --alpha-r 1e-5]
//! APS_THREADS=4 cargo run -p aps-bench --release --bin fig_hetero
//! ```
//!
//! Prints a per-cell summary and writes the machine-readable
//! `results/bench_hetero.json` report. Planning fans out per tenant on
//! the `APS_THREADS` pool but each tenant is planned independently and
//! execution is single-clocked in integer picoseconds, so the report's
//! `data` section is bit-identical at any `APS_THREADS` setting and
//! `perfgate compare`/`gate` accept it alongside the figure reports.

use adaptive_photonics::experiment::Experiment;
use aps_bench::cli::{emit_bench_report, parse_flags};
use aps_bench::output::Json;
use aps_core::controller::by_name as controller_by_name;
use aps_cost::units::{format_time, picos_to_secs, MIB};
use aps_cost::ReconfigModel;
use aps_matrix::Matching;
use aps_par::Pool;
use aps_sim::scenarios::hetero::{self, FabricKind};
use aps_sim::TenantReport;
use aps_topology::builders::ring_unidirectional;

const SCENARIO: &str = "hetero-hybrid";
const FABRICS: [FabricKind; 3] = [
    FabricKind::Electrical,
    FabricKind::Optical,
    FabricKind::Hybrid,
];
const CONTROLLERS: [&str; 3] = ["static", "opt", "greedy"];

/// Plans and executes the scenario with `controller` on a fresh fabric
/// of `kind`; one report per tenant, in input order.
fn run_cell(
    pool: &Pool,
    kind: FabricKind,
    controller: &str,
    bytes: f64,
    alpha_r: f64,
) -> Vec<TenantReport> {
    let scenario = hetero::by_name(SCENARIO, bytes).expect("shipped scenario");
    let n = scenario.n;
    let reconfig = ReconfigModel::constant(alpha_r).expect("valid delay");
    let mut exp = Experiment::domain(ring_unidirectional(n).expect("valid ring"))
        .reconfig(reconfig)
        .pool(*pool)
        .controller(controller_by_name(controller).expect("shipped controller"))
        .scenario(scenario);
    exp.plan().expect("plannable scenario");
    let mut fabric =
        hetero::build_fabric(kind, Matching::shift(n, 1).expect("ring base"), reconfig)
            .expect("buildable fabric");
    exp.simulate_on(fabric.as_mut())
        .expect("runnable scenario")
        .into_iter()
        .map(|r| r.expect("healthy fabric"))
        .collect()
}

fn makespan_ps(tenants: &[TenantReport]) -> u64 {
    tenants.iter().map(|t| t.finish_ps).max().unwrap_or(0)
}

fn main() {
    let flags = parse_flags(&["--bytes", "--alpha-r"]);
    let bytes = flags.parsed_or("bytes", MIB);
    let alpha_r = flags.parsed_or("alpha-r", 10e-6);

    let pool = Pool::from_env();
    println!(
        "Heterogeneous fabrics — `{SCENARIO}` mix at {bytes:.0} B, α_r = {}, \
         electrical/optical/hybrid × static/opt/greedy, {} worker thread(s)\n",
        format_time(alpha_r),
        pool.threads()
    );

    let started = std::time::Instant::now();
    let mut cell_reports = Vec::new();
    for kind in FABRICS {
        let baseline_ps = makespan_ps(&run_cell(&pool, kind, "static", bytes, alpha_r)).max(1);
        for controller in CONTROLLERS {
            let tenants = run_cell(&pool, kind, controller, bytes, alpha_r);
            let completion_ps = makespan_ps(&tenants);
            let speedup = baseline_ps as f64 / completion_ps.max(1) as f64;
            let reconfig_events: u64 = tenants
                .iter()
                .map(|t| t.report.reconfig_events() as u64)
                .sum();
            println!(
                "── {:<12} {controller:<8} makespan {:>12}  {reconfig_events:>3} reconfigs  \
                 speedup ×{speedup:.3}",
                kind.name(),
                format_time(picos_to_secs(completion_ps)),
            );
            let tenant_rows = tenants
                .iter()
                .map(|t| {
                    Json::obj([
                        ("name", Json::Str(t.name.clone())),
                        ("finish_s", Json::Num(picos_to_secs(t.finish_ps))),
                        (
                            "reconfig_s",
                            Json::Num(picos_to_secs(
                                t.report.steps.iter().map(|s| s.reconfig_ps).sum(),
                            )),
                        ),
                        (
                            "transfer_s",
                            Json::Num(picos_to_secs(
                                t.report.steps.iter().map(|s| s.transfer_ps).sum(),
                            )),
                        ),
                        (
                            "arbitration_s",
                            Json::Num(picos_to_secs(t.arbitration_ps())),
                        ),
                    ])
                })
                .collect();
            cell_reports.push(Json::obj([
                ("fabric", Json::Str(kind.name().into())),
                ("controller", Json::Str(controller.into())),
                ("makespan_s", Json::Num(picos_to_secs(completion_ps))),
                ("reconfig_events", Json::UInt(reconfig_events)),
                ("speedup_vs_static", Json::Num(speedup)),
                ("tenants", Json::Arr(tenant_rows)),
            ]));
        }
    }
    let wall_s = started.elapsed().as_secs_f64();
    println!();

    let data = Json::obj([
        ("figure", Json::Str("hetero".into())),
        ("scenario", Json::Str(SCENARIO.into())),
        ("bytes", Json::Num(bytes)),
        ("alpha_r_s", Json::Num(alpha_r)),
        (
            "fabrics",
            Json::Arr(FABRICS.iter().map(|k| Json::Str(k.name().into())).collect()),
        ),
        (
            "controllers",
            Json::Arr(CONTROLLERS.iter().map(|c| Json::Str((*c).into())).collect()),
        ),
        ("cells", Json::Arr(cell_reports)),
    ]);
    emit_bench_report("hetero", &pool, wall_s, data);
}
