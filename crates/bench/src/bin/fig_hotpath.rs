//! Hot-path microbenchmark: steady-state streaming step rate at scale.
//!
//! Drives the zero-allocation totals path ([`aps_sim::run_workload_totals`]
//! with the arena-backed [`aps_sim::StepScratch`] underneath) with an
//! endless `TrainingLoop` on domains from 64 to 4096 ports and reports
//! **ns/step** and **steps/sec** per port count — the per-step cost the
//! arena layer exists to keep flat and allocation-free.
//!
//! Usage:
//!
//! ```text
//! cargo run -p aps-bench --release --bin fig_hotpath [-- --bytes 4194304 --alpha-r 1e-5 --scale 1]
//! APS_THREADS=4 cargo run -p aps-bench --release --bin fig_hotpath
//! ```
//!
//! Prints the per-cell step rates and writes the machine-readable
//! `results/bench_hotpath.json`. Step rates are wall-clock quantities and
//! stay **out of the `data` section**: `data` carries only deterministic
//! KPIs (steps, matched steps, reconfigurations, total simulated time), so
//! `perfgate compare` accepts the report across `APS_THREADS` settings and
//! reruns, while the report's `wall_s` meta feeds `perfgate gate`'s
//! regression envelope.

use aps_bench::cli::{emit_bench_report, parse_flags};
use aps_bench::output::Json;
use aps_collectives::workload::generators::TrainingLoop;
use aps_core::controller::Greedy;
use aps_cost::units::MIB;
use aps_cost::ReconfigModel;
use aps_fabric::CircuitSwitch;
use aps_matrix::Matching;
use aps_par::Pool;
use aps_sim::{run_workload_totals, RunConfig, StreamPricing};
use aps_topology::builders;

/// `(ports, steady-state steps)` cells: the step budget shrinks as the
/// per-step flow count grows, keeping every cell at comparable wall time.
const CELLS: [(usize, usize); 4] = [(64, 8192), (256, 2048), (1024, 256), (4096, 32)];

fn main() {
    let flags = parse_flags(&["--bytes", "--alpha-r", "--scale"]);
    let bytes = flags.parsed_or("bytes", 4.0 * MIB);
    let alpha_r = flags.parsed_or("alpha-r", 10e-6);
    let scale = flags.parsed_or("scale", 1usize).max(1);

    let pool = Pool::from_env();
    println!(
        "Zero-allocation hot path — endless training loop under the greedy \
         controller, {}× step budget, {} worker thread(s)\n",
        scale,
        pool.threads()
    );

    let started = std::time::Instant::now();
    let mut cell_reports = Vec::new();
    for (n, base_steps) in CELLS {
        let steps = base_steps * scale;
        let base = builders::ring_unidirectional(n).expect("ring");
        let reconfig = ReconfigModel::constant(alpha_r).expect("valid delay");
        let mut fabric = CircuitSwitch::new(Matching::shift(n, 1).unwrap(), reconfig);
        let mut workload =
            TrainingLoop::new(n, 4, bytes / 4.0, bytes, None).expect("valid training loop");
        let cfg = RunConfig::paper_defaults();
        let cell_start = std::time::Instant::now();
        let summary = run_workload_totals(
            &mut fabric,
            &base,
            &mut workload,
            &Greedy,
            StreamPricing::new(reconfig),
            &cfg,
            steps,
        )
        .expect("streaming run");
        let cell_wall = cell_start.elapsed().as_secs_f64();
        let ns_per_step = cell_wall * 1e9 / summary.steps as f64;
        let steps_per_sec = summary.steps as f64 / cell_wall;
        println!(
            "── {n:>5} ports  {:>6} steps  {ns_per_step:>10.0} ns/step  \
             {steps_per_sec:>10.0} steps/s  {} reconfigs",
            summary.steps, summary.reconfig_events,
        );
        cell_reports.push(Json::obj([
            ("ports", Json::UInt(n as u64)),
            ("steps", Json::UInt(summary.steps as u64)),
            ("matched_steps", Json::UInt(summary.matched_steps as u64)),
            (
                "reconfig_events",
                Json::UInt(summary.reconfig_events as u64),
            ),
            ("total_ps", Json::UInt(summary.total_ps)),
        ]));
    }
    let wall_s = started.elapsed().as_secs_f64();
    println!();

    let data = Json::obj([
        ("figure", Json::Str("hotpath".into())),
        ("bytes", Json::Num(bytes)),
        ("alpha_r_s", Json::Num(alpha_r)),
        ("scale", Json::UInt(scale as u64)),
        ("cells", Json::Arr(cell_reports)),
    ]);
    emit_bench_report("hotpath", &pool, wall_s, data);
}
