//! Regenerates Figure 1 of the paper: eight heatmaps of the speedup
//! achieved by the optimized circuit-switching schedule (OPT) over (top
//! row) naive per-step BvN reconfiguration and (bottom row) a static ring,
//! for halving-doubling AllReduce, Swing AllReduce and All-to-All on a
//! 64-GPU photonic scale-up domain.
//!
//! Usage:
//!
//! ```text
//! cargo run -p aps-bench --release --bin fig1             # all panels
//! cargo run -p aps-bench --release --bin fig1 -- --panel c
//! cargo run -p aps-bench --release --bin fig1 -- --n 32   # smaller domain
//! ```
//!
//! Each panel prints an ASCII heatmap (rows: message size, columns: α_r)
//! and writes `results/fig1<panel>.csv`.

use aps_bench::figures::{panel, run_panel, Panel, PAPER_N};
use aps_bench::output::write_result;
use aps_core::analysis::{render_heatmap, to_csv};
use aps_core::sweep::{SweepCell, SweepGrid};

fn main() {
    let mut panels: Vec<Panel> = Panel::ALL.to_vec();
    let mut n = PAPER_N;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--panel" => {
                let v = args.next().unwrap_or_default();
                match Panel::parse(&v) {
                    Some(p) => panels = vec![p],
                    None => {
                        eprintln!("unknown panel '{v}' (expected a–h)");
                        std::process::exit(2);
                    }
                }
            }
            "--n" => {
                n = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--n requires a number");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }

    println!("Figure 1 — n = {n} GPUs, 800 Gbps links, δ = 100 ns, base = unidirectional ring\n");
    for p in panels {
        let spec = panel(p);
        let result = run_panel(&spec, n, &SweepGrid::paper_default())
            .unwrap_or_else(|e| panic!("panel {:?} failed: {e}", p));
        let values = if spec.vs_bvn {
            result.map(SweepCell::speedup_vs_bvn)
        } else {
            result.map(SweepCell::speedup_vs_static)
        };
        println!("{}", render_heatmap(&spec.title(), &result.grid, &values));
        let csv = to_csv(&result.grid, &values);
        match write_result(&format!("fig1{}.csv", spec.panel.letter()), &csv) {
            Ok(path) => println!("  → {}\n", path.display()),
            Err(e) => eprintln!("  (csv write failed: {e})\n"),
        }
    }
}
