//! Regenerates Figure 1 of the paper: eight heatmaps of the speedup
//! achieved by the optimized circuit-switching schedule (OPT) over (top
//! row) naive per-step BvN reconfiguration and (bottom row) a static ring,
//! for halving-doubling AllReduce, Swing AllReduce and All-to-All on a
//! 64-GPU photonic scale-up domain.
//!
//! Usage:
//!
//! ```text
//! cargo run -p aps-bench --release --bin fig1             # all panels
//! cargo run -p aps-bench --release --bin fig1 -- --panel c
//! cargo run -p aps-bench --release --bin fig1 -- --n 32   # smaller domain
//! APS_THREADS=4 cargo run -p aps-bench --release --bin fig1
//! ```
//!
//! Each panel prints an ASCII heatmap (rows: message size, columns: α_r)
//! and writes `results/fig1<panel>.csv`; the whole run additionally writes
//! the machine-readable `results/bench_fig1.json` report (see the README's
//! "JSON bench reports" section). Grid cells are evaluated on an
//! `APS_THREADS`-sized worker pool; the report's `data` section is
//! bit-identical at any thread count.

use aps_bench::cli::{emit_bench_report, parse_flags};
use aps_bench::figures::{
    grid_json, panel, panel_json, run_panel_on, theta_stats_json, Panel, PAPER_N,
};
use aps_bench::output::{write_result, Json};
use aps_core::analysis::{render_heatmap, to_csv};
use aps_core::sweep::{SweepCell, SweepGrid};
use aps_flow::CacheStats;
use aps_par::Pool;

fn main() {
    let flags = parse_flags(&["--panel", "--n"]);
    let panels: Vec<Panel> = match flags.get("panel") {
        None => Panel::ALL.to_vec(),
        Some(v) => match Panel::parse(v) {
            Some(p) => vec![p],
            None => {
                eprintln!("unknown panel '{v}' (expected a–h)");
                std::process::exit(2);
            }
        },
    };
    let n = flags.parsed_or("n", PAPER_N);

    let pool = Pool::from_env();
    println!(
        "Figure 1 — n = {n} GPUs, 800 Gbps links, δ = 100 ns, base = unidirectional ring, \
         {} worker thread(s)\n",
        pool.threads()
    );
    let grid = SweepGrid::paper_default();
    let started = std::time::Instant::now();
    let mut panel_reports = Vec::with_capacity(panels.len());
    let mut theta_stats = CacheStats::default();
    for p in panels {
        let spec = panel(p);
        let result = run_panel_on(&pool, &spec, n, &grid)
            .unwrap_or_else(|e| panic!("panel {:?} failed: {e}", p));
        let values = if spec.vs_bvn {
            result.map(SweepCell::speedup_vs_bvn)
        } else {
            result.map(SweepCell::speedup_vs_static)
        };
        println!("{}", render_heatmap(&spec.title(), &result.grid, &values));
        let csv = to_csv(&result.grid, &values);
        match write_result(&format!("fig1{}.csv", spec.panel.letter()), &csv) {
            Ok(path) => println!("  → {}\n", path.display()),
            Err(e) => eprintln!("  (csv write failed: {e})\n"),
        }
        theta_stats.merge(result.theta_stats);
        panel_reports.push(panel_json(&spec, &result));
    }
    let wall_s = started.elapsed().as_secs_f64();

    let data = Json::obj([
        ("figure", Json::Str("fig1".into())),
        ("n", Json::UInt(n as u64)),
        ("grid", grid_json(&grid)),
        ("theta_cache", theta_stats_json(&theta_stats)),
        ("panels", Json::Arr(panel_reports)),
    ]);
    emit_bench_report("fig1", &pool, wall_s, data);
}
