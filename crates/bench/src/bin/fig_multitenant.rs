//! Multi-tenant fabric benchmark: the named workload mixes of
//! `aps-sim::scenarios` across a ladder of reconfiguration delays, under
//! three switch-schedule policy families — the scenarios' built-in static
//! per-tenant policies, and two controller ablations where every tenant's
//! schedule is planned by a shipped `aps-core` controller (the eq. (7) DP
//! optimum and the online greedy rule).
//!
//! Usage:
//!
//! ```text
//! cargo run -p aps-bench --release --bin fig_multitenant [-- --bytes 4194304]
//! APS_THREADS=4 cargo run -p aps-bench --release --bin fig_multitenant
//! ```
//!
//! Prints a per-cell summary (per-tenant makespans, arbitration waits,
//! reconfiguration counts) and writes the machine-readable
//! `results/bench_multitenant.json` report. Cells are evaluated on an
//! `APS_THREADS`-sized worker pool; every simulated quantity is an exact
//! function of the cell inputs, so the report's `data` section is
//! bit-identical at any thread count and `perfgate compare`/`gate` accept
//! it alongside the figure reports.

use aps_bench::cli::{emit_bench_report, parse_flags};
use aps_bench::output::Json;
use aps_core::controller::{Controller, DpPlanned, Greedy};
use aps_cost::units::{format_time, MIB};
use aps_cost::{CostParams, ReconfigModel};
use aps_par::Pool;
use aps_sim::harness::{run_scenario_trials, ScenarioTrial};
use aps_sim::{scenarios, RunConfig};

/// One benchmark cell: a scenario at one reconfiguration delay under one
/// switch-schedule policy family.
struct Cell {
    policy: &'static str,
    alpha_r_s: f64,
    trial: ScenarioTrial,
}

/// The controller-planned cell families: every tenant's switch schedule
/// is chosen by the named controller on its own partition. The scenarios'
/// built-in per-tenant policies form the third, `"static"`, family.
const CONTROLLER_FAMILIES: [(&str, &dyn Controller); 2] =
    [("planned", &DpPlanned), ("greedy", &Greedy)];

fn main() {
    let bytes = parse_flags(&["--bytes"]).parsed_or("bytes", 4.0 * MIB);

    let pool = Pool::from_env();
    let cfg = RunConfig::paper_defaults();
    let params = CostParams::paper_defaults();
    let delays = [1e-6, 10e-6, 100e-6];
    println!(
        "Multi-tenant fabric scenarios — base volume {:.0} KiB, α_r ∈ {{1, 10, 100}} µs, \
         static/planned/greedy policies, {} worker thread(s)\n",
        bytes / 1024.0,
        pool.threads()
    );

    let started = std::time::Instant::now();
    let mut cells: Vec<Cell> = Vec::new();
    for &alpha_r in &delays {
        let reconfig = ReconfigModel::constant(alpha_r).expect("valid delay");
        for scenario in scenarios::all(bytes) {
            cells.push(Cell {
                policy: "static",
                alpha_r_s: alpha_r,
                trial: ScenarioTrial {
                    scenario: scenario.clone(),
                    reconfig,
                    config: cfg,
                },
            });
            for (label, controller) in CONTROLLER_FAMILIES {
                let mut planned = scenario.clone();
                planned
                    .plan_with(&pool, controller, params, reconfig)
                    .unwrap_or_else(|e| panic!("tenant planning ({label}) failed: {e}"));
                cells.push(Cell {
                    policy: label,
                    alpha_r_s: alpha_r,
                    trial: ScenarioTrial {
                        scenario: planned,
                        reconfig,
                        config: cfg,
                    },
                });
            }
        }
    }

    let trials: Vec<ScenarioTrial> = cells.iter().map(|c| c.trial.clone()).collect();
    let outcomes = run_scenario_trials(&pool, &trials).expect("scenario batch failed");
    let wall_s = started.elapsed().as_secs_f64();

    let mut cell_reports = Vec::with_capacity(cells.len());
    for (cell, outcome) in cells.iter().zip(&outcomes) {
        println!(
            "── {} · α_r = {} · {} policy",
            cell.trial.scenario.name,
            format_time(cell.alpha_r_s),
            cell.policy
        );
        let mut tenant_reports = Vec::with_capacity(outcome.len());
        for (spec, result) in cell.trial.scenario.tenants.iter().zip(outcome) {
            let r = result
                .as_ref()
                .unwrap_or_else(|e| panic!("tenant '{}' failed: {e}", spec.name));
            println!(
                "   {:<16} {:>2} ports  makespan {:>12}  arbitration {:>12}  {} reconfigs",
                spec.name,
                spec.ports.len(),
                format_time(r.makespan_s()),
                format_time(r.report.arbitration_s()),
                r.report.reconfig_events(),
            );
            tenant_reports.push(Json::obj([
                ("name", Json::Str(spec.name.clone())),
                ("ports", Json::UInt(spec.ports.len() as u64)),
                ("steps", Json::UInt(r.report.steps.len() as u64)),
                (
                    "reconfig_events",
                    Json::UInt(r.report.reconfig_events() as u64),
                ),
                ("makespan_s", Json::Num(r.makespan_s())),
                ("arbitration_s", Json::Num(r.report.arbitration_s())),
                ("transfer_s", Json::Num(r.report.transfer_s())),
            ]));
        }
        cell_reports.push(Json::obj([
            ("scenario", Json::Str(cell.trial.scenario.name.clone())),
            ("policy", Json::Str(cell.policy.into())),
            ("alpha_r_s", Json::Num(cell.alpha_r_s)),
            ("tenants", Json::Arr(tenant_reports)),
        ]));
    }
    println!();

    let mut policies = vec![Json::Str("static".into())];
    policies.extend(
        CONTROLLER_FAMILIES
            .iter()
            .map(|(label, _)| Json::Str((*label).to_string())),
    );
    let data = Json::obj([
        ("figure", Json::Str("multitenant".into())),
        ("bytes", Json::Num(bytes)),
        ("alpha_r_s", Json::nums(delays)),
        ("policies", Json::Arr(policies)),
        ("cells", Json::Arr(cell_reports)),
    ]);
    emit_bench_report("multitenant", &pool, wall_s, data);
}
