//! Fabric-as-a-service benchmark: an open-system job stream on a
//! 16-port fabric under the three admission policies — reject, bounded
//! queue, and backpressure — at two arrival intensities each.
//!
//! Two tenant classes share the fabric: a half-fabric class and a
//! quarter-fabric class, both Poisson. Every cell reports goodput,
//! streaming p50/p99 job-completion latency, and makespan from the O(1)
//! `ServiceSummary` fold — nothing is materialized per job.
//!
//! Usage:
//!
//! ```text
//! cargo run -p aps-bench --release --bin fig_faas [-- --jobs 200 --alpha-r 1e-5]
//! APS_THREADS=4 cargo run -p aps-bench --release --bin fig_faas
//! ```
//!
//! Prints a per-cell summary and writes the machine-readable
//! `results/bench_faas.json` report. Arrival processes are seeded and
//! the engine is single-clocked in integer picoseconds, so the report's
//! `data` section is bit-identical at any `APS_THREADS` setting and
//! `perfgate compare`/`gate` accept it alongside the figure reports.

use aps_bench::cli::{emit_bench_report, parse_flags};
use aps_bench::output::Json;
use aps_collectives::allreduce;
use aps_collectives::{ScheduleStream, Workload};
use aps_core::ConfigChoice;
use aps_cost::units::{format_time, picos_to_secs, MIB};
use aps_cost::ReconfigModel;
use aps_faas::{
    run_service, AdmissionPolicy, PoissonArrivals, ServiceConfig, ServiceSwitching, TenantClass,
};
use aps_fabric::CircuitSwitch;
use aps_matrix::Matching;
use aps_par::Pool;

const N: usize = 16;

/// The two tenant classes, fresh per cell (each run consumes the
/// arrival streams even though they reset on entry — fresh state keeps
/// the cells independent by construction).
fn classes(jobs: u64, rate_hz: f64) -> Vec<TenantClass> {
    let half = allreduce::halving_doubling::build(8, 4.0 * MIB)
        .expect("8-port allreduce")
        .schedule;
    let quarter = allreduce::halving_doubling::build(4, MIB)
        .expect("4-port allreduce")
        .schedule;
    vec![
        TenantClass::new(
            "half-fabric",
            8,
            Matching::shift(8, 1).expect("ring base"),
            ServiceSwitching::Uniform(ConfigChoice::Matched),
            Box::new(PoissonArrivals::new(rate_hz, Some(jobs), 42).expect("valid rate")),
            Box::new(move |_id: u64| -> Box<dyn Workload> {
                Box::new(ScheduleStream::new(half.clone()))
            }),
        ),
        TenantClass::new(
            "quarter-fabric",
            4,
            Matching::shift(4, 1).expect("ring base"),
            ServiceSwitching::Uniform(ConfigChoice::Matched),
            Box::new(PoissonArrivals::new(2.0 * rate_hz, Some(jobs), 7).expect("valid rate")),
            Box::new(move |_id: u64| -> Box<dyn Workload> {
                Box::new(ScheduleStream::new(quarter.clone()))
            }),
        ),
    ]
}

fn main() {
    let flags = parse_flags(&["--jobs", "--alpha-r"]);
    let jobs = flags.parsed_or("jobs", 200.0) as u64;
    let alpha_r = flags.parsed_or("alpha-r", 10e-6);

    let pool = Pool::from_env();
    let policies: [(&str, AdmissionPolicy); 3] = [
        ("reject", AdmissionPolicy::Reject),
        ("queue", AdmissionPolicy::Queue { capacity: 8 }),
        (
            "backpressure",
            AdmissionPolicy::Backpressure { capacity: 8 },
        ),
    ];
    let rates_hz = [2.0e5, 2.0e6];
    println!(
        "Fabric as a service on {N} ports — {jobs} jobs/class, α_r = {}, \
         reject/queue/backpressure admission, {} worker thread(s)\n",
        format_time(alpha_r),
        pool.threads()
    );

    let started = std::time::Instant::now();
    let mut cell_reports = Vec::new();
    for (policy_name, policy) in policies {
        for rate_hz in rates_hz {
            let cfg = ServiceConfig {
                admission: policy,
                ..ServiceConfig::paper_defaults()
            };
            let mut fab = CircuitSwitch::new(
                Matching::shift(N, 1).expect("ring base"),
                ReconfigModel::constant(alpha_r).expect("valid delay"),
            );
            let report =
                run_service(&mut fab, &mut classes(jobs, rate_hz), &cfg).expect("service run");
            let s = &report.summary;
            let offered = s.offered();
            let completed = s.completed();
            let p99_s = s
                .tenants
                .iter()
                .filter_map(|t| t.completion.p99_ps())
                .max()
                .map_or(0.0, picos_to_secs);
            println!(
                "── {policy_name:<13} λ={rate_hz:>9.0}/s  {completed:>4}/{offered:<4} done  \
                 makespan {:>12}  worst p99 {:>12}",
                format_time(s.makespan_s()),
                format_time(p99_s),
            );
            let tenants = s
                .tenants
                .iter()
                .zip(&s.class_names)
                .map(|(t, name)| {
                    Json::obj([
                        ("class", Json::Str(name.clone())),
                        ("offered", Json::UInt(t.offered)),
                        ("completed", Json::UInt(t.completed)),
                        ("queued", Json::UInt(t.queued)),
                        ("backpressured", Json::UInt(t.backpressured)),
                        ("rejected", Json::UInt(t.rejected())),
                        ("goodput", Json::Num(t.goodput())),
                        (
                            "p50_s",
                            Json::Num(t.completion.p50_ps().map_or(0.0, picos_to_secs)),
                        ),
                        (
                            "p99_s",
                            Json::Num(t.completion.p99_ps().map_or(0.0, picos_to_secs)),
                        ),
                    ])
                })
                .collect();
            cell_reports.push(Json::obj([
                ("policy", Json::Str(policy_name.into())),
                ("rate_hz", Json::Num(rate_hz)),
                ("offered", Json::UInt(offered)),
                ("completed", Json::UInt(completed)),
                ("steps", Json::UInt(s.steps.steps as u64)),
                ("makespan_s", Json::Num(s.makespan_s())),
                (
                    "fairness",
                    Json::Arr(s.fairness_vector().into_iter().map(Json::Num).collect()),
                ),
                ("tenants", Json::Arr(tenants)),
            ]));
        }
    }
    let wall_s = started.elapsed().as_secs_f64();
    println!();

    let data = Json::obj([
        ("figure", Json::Str("faas".into())),
        ("n", Json::UInt(N as u64)),
        ("jobs_per_class", Json::UInt(jobs)),
        ("alpha_r_s", Json::Num(alpha_r)),
        (
            "policies",
            Json::Arr(
                policies
                    .iter()
                    .map(|(p, _)| Json::Str((*p).into()))
                    .collect(),
            ),
        ),
        ("cells", Json::Arr(cell_reports)),
    ]);
    emit_bench_report("faas", &pool, wall_s, data);
}
