//! Regenerates Figure 2 of the paper: the speedup of the optimized schedule
//! over the *best of both* baselines — `min(static ring, BvN)` — exposing
//! the transitional regime (the diagonal band) where neither always-static
//! nor always-reconfigure is sufficient and only an adaptive schedule wins.
//!
//! Usage:
//!
//! ```text
//! cargo run -p aps-bench --release --bin fig2 [-- --n 64]
//! ```
//!
//! Prints the best-of-both heatmap plus the per-cell regime map
//! (S = static optimal, B = BvN optimal, * = only mixed wins) and writes
//! `results/fig2.csv` plus the machine-readable `results/bench_fig2.json`
//! report. Grid cells are evaluated on an `APS_THREADS`-sized worker pool;
//! the report's `data` section is bit-identical at any thread count.

use aps_bench::cli::{emit_bench_report, parse_flags};
use aps_bench::figures::{
    grid_json, panel, panel_json, run_panel_on, theta_stats_json, Panel, PAPER_N,
};
use aps_bench::output::{write_result, Json};
use aps_core::analysis::{render_heatmap, render_regimes, to_csv};
use aps_core::sweep::{SweepCell, SweepGrid};
use aps_par::Pool;

fn main() {
    let n = parse_flags(&["--n"]).parsed_or("n", PAPER_N);

    // Figure 2 uses the Figure-1a workload (bandwidth-optimal AllReduce at
    // α = 100 ns) but reports OPT against min(static, BvN).
    let pool = Pool::from_env();
    let grid = SweepGrid::paper_default();
    let spec = panel(Panel::A);
    let started = std::time::Instant::now();
    let result = run_panel_on(&pool, &spec, n, &grid).expect("figure 2 sweep failed");
    let wall_s = started.elapsed().as_secs_f64();
    let values = result.map(SweepCell::speedup_vs_best_of_both);
    let title = format!(
        "Figure 2: speedup of OPT vs best-of-both (static, BvN) — {}, n = {n}, \
         {} worker thread(s)",
        spec.workload.name(),
        pool.threads()
    );
    println!("{}", render_heatmap(&title, &result.grid, &values));
    println!(
        "{}",
        render_regimes("Regime map (tolerance 1%)", &result, 0.01)
    );
    let csv = to_csv(&result.grid, &values);
    match write_result("fig2.csv", &csv) {
        Ok(path) => println!("  → {}", path.display()),
        Err(e) => eprintln!("  (csv write failed: {e})"),
    }

    let data = Json::obj([
        ("figure", Json::Str("fig2".into())),
        ("n", Json::UInt(n as u64)),
        ("grid", grid_json(&grid)),
        ("theta_cache", theta_stats_json(&result.theta_stats)),
        ("panels", Json::Arr(vec![panel_json(&spec, &result)])),
    ]);
    emit_bench_report("fig2", &pool, wall_s, data);
}
