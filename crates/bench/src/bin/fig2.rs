//! Regenerates Figure 2 of the paper: the speedup of the optimized schedule
//! over the *best of both* baselines — `min(static ring, BvN)` — exposing
//! the transitional regime (the diagonal band) where neither always-static
//! nor always-reconfigure is sufficient and only an adaptive schedule wins.
//!
//! Usage:
//!
//! ```text
//! cargo run -p aps-bench --release --bin fig2 [-- --n 64]
//! ```
//!
//! Prints the best-of-both heatmap plus the per-cell regime map
//! (S = static optimal, B = BvN optimal, * = only mixed wins) and writes
//! `results/fig2.csv`.

use aps_bench::figures::{panel, run_panel, Panel, PAPER_N};
use aps_bench::output::write_result;
use aps_core::analysis::{render_heatmap, render_regimes, to_csv};
use aps_core::sweep::{SweepCell, SweepGrid};

fn main() {
    let mut n = PAPER_N;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--n" => {
                n = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--n requires a number");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }

    // Figure 2 uses the Figure-1a workload (bandwidth-optimal AllReduce at
    // α = 100 ns) but reports OPT against min(static, BvN).
    let spec = panel(Panel::A);
    let result = run_panel(&spec, n, &SweepGrid::paper_default()).expect("figure 2 sweep failed");
    let values = result.map(SweepCell::speedup_vs_best_of_both);
    let title = format!(
        "Figure 2: speedup of OPT vs best-of-both (static, BvN) — {}, n = {n}",
        spec.workload.name()
    );
    println!("{}", render_heatmap(&title, &result.grid, &values));
    println!(
        "{}",
        render_regimes("Regime map (tolerance 1%)", &result, 0.01)
    );
    let csv = to_csv(&result.grid, &values);
    match write_result("fig2.csv", &csv) {
        Ok(path) => println!("  → {}", path.display()),
        Err(e) => eprintln!("  (csv write failed: {e})"),
    }
}
