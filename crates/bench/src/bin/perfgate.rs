//! CI gatekeeper for the JSON bench reports (`results/bench_<name>.json`).
//!
//! ```text
//! perfgate compare [--replay <report.json>] <a.json> <b.json> [<c.json> ...]
//! perfgate baseline -o BENCH_baseline.json <report.json> [...]
//! perfgate gate --baseline BENCH_baseline.json [--max-regress 0.25] \
//!     [--dir <results-dir>] [<report.json> ...]
//! perfgate ablate --plan <name> [--registry <csv>] [--report <json>] [--commit <id>]
//! ```
//!
//! * `compare` — asserts the reports are **byte-identical** once the two
//!   runtime `meta` lines (`threads`, `wall_s`) are stripped. This is the
//!   determinism check: the same commit must produce the same sweep data at
//!   `APS_THREADS=1` and `APS_THREADS=4`. With `--replay <out.json>` it
//!   additionally writes a structured divergence report (modeled on
//!   `aps-replay`'s `DivergenceReport`): per comparison pair, whether it
//!   was clean and, if not, the first diverging stripped line, its JSON
//!   key, both values, and a field-class guess — so CI uploads a machine-
//!   readable artifact instead of making humans diff raw bytes.
//! * `baseline` — distills reports into a committed baseline file carrying
//!   each report's name, thread count and wall-clock.
//! * `gate` — compares each report's wall-clock against its baseline
//!   entry; exits non-zero when a report regressed by more than
//!   `--max-regress` (default 0.25 = 25%). `--dir <results-dir>` gates
//!   every `bench_*.json` found there (sorted by file name), so CI does
//!   not hand-maintain the report list.
//! * `ablate` — runs a committed [`aps_ablate::plans`] ablation plan on an
//!   `APS_THREADS` pool, prints per-KPI tolerance-gate verdicts, appends
//!   the result rows to the append-only CSV registry (default
//!   `results/ablation_registry.csv`) keyed by `--commit` (default
//!   `$GITHUB_SHA`, else `local`) + plan hash, and optionally writes a
//!   JSON KPI report for artifact upload.
//!
//! Exit codes: 0 pass, 1 check failed, 2 usage/IO error.

use aps_ablate::{append_rows, plans};
use aps_bench::output::{extract_number, extract_string, strip_runtime_meta, Json};
use aps_par::Pool;

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("perfgate: cannot read {path}: {e}");
        std::process::exit(2);
    })
}

fn report_name(body: &str, path: &str) -> String {
    extract_string(body, "name").unwrap_or_else(|| {
        eprintln!("perfgate: {path} has no \"name\" meta key");
        std::process::exit(2);
    })
}

fn report_wall_s(body: &str, path: &str) -> f64 {
    extract_number(body, "wall_s").unwrap_or_else(|| {
        eprintln!("perfgate: {path} has no \"wall_s\" meta key");
        std::process::exit(2);
    })
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  perfgate compare [--replay <out.json>] <a.json> <b.json> [...]\n  perfgate \
         baseline -o <out.json> <report.json> [...]\n  perfgate gate --baseline <baseline.json> \
         [--max-regress <frac>] [--dir <results-dir>] [<report.json> ...]\n  perfgate ablate \
         --plan <name> [--registry <csv>] [--report <json>] [--commit <id>]\n    plans: {}",
        plans::all()
            .iter()
            .map(|p| p.name.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(2);
}

/// The JSON key on a `"key": value` report line, if any.
fn line_key(line: &str) -> Option<&str> {
    let t = line.trim_start();
    let rest = t.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(&rest[..end])
}

/// Guesses which replay field class a diverging bench-report key belongs
/// to, mirroring `aps-replay`'s decision / rates / timing / accounting
/// taxonomy for hand-rolled JSON lines.
fn classify_key(key: &str) -> &'static str {
    let k = key.to_ascii_lowercase();
    let has = |needles: &[&str]| needles.iter().any(|n| k.contains(n));
    if has(&[
        "policy",
        "controller",
        "schedule",
        "choice",
        "decision",
        "matched",
    ]) {
        "decision"
    } else if has(&["theta", "throughput", "rate", "gbps", "hops"]) {
        "rates"
    } else if has(&["reconfig", "ports", "events", "steps", "count", "seed", "n"]) {
        "accounting"
    } else {
        // Bench reports are mostly timings (`t_s`, `speedup`, `wall`, …).
        "timing"
    }
}

/// One comparison pair's entry for the structured divergence report.
fn pair_entry(reference: &str, candidate: &str, a: &str, b: &str) -> (bool, Json) {
    let mut fields: Vec<(&'static str, Json)> = vec![
        ("reference", Json::Str(a.to_string())),
        ("candidate", Json::Str(b.to_string())),
    ];
    let first = reference
        .lines()
        .zip(candidate.lines())
        .position(|(x, y)| x != y);
    let (ref_lines, cand_lines) = (reference.lines().count(), candidate.lines().count());
    let clean = first.is_none() && ref_lines == cand_lines;
    fields.push(("clean", Json::Bool(clean)));
    if let Some(i) = first {
        let ref_line = reference.lines().nth(i).unwrap_or_default();
        let cand_line = candidate.lines().nth(i).unwrap_or_default();
        let key = line_key(ref_line)
            .or_else(|| line_key(cand_line))
            .unwrap_or("");
        fields.push((
            "first_divergence",
            Json::obj([
                ("stripped_line", Json::UInt(i as u64 + 1)),
                ("key", Json::Str(key.to_string())),
                ("field_class", Json::Str(classify_key(key).to_string())),
                ("reference_value", Json::Str(ref_line.trim().to_string())),
                ("candidate_value", Json::Str(cand_line.trim().to_string())),
            ]),
        ));
    } else if !clean {
        fields.push((
            "first_divergence",
            Json::obj([
                (
                    "stripped_line",
                    Json::UInt(ref_lines.min(cand_lines) as u64 + 1),
                ),
                ("key", Json::Str("<line count>".to_string())),
                ("field_class", Json::Str("accounting".to_string())),
                ("reference_value", Json::Str(format!("{ref_lines} lines"))),
                ("candidate_value", Json::Str(format!("{cand_lines} lines"))),
            ]),
        ));
    }
    (clean, Json::obj(fields))
}

fn compare(args: &[String]) -> i32 {
    let mut replay_out = None;
    let mut paths = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--replay" => replay_out = Some(it.next().cloned().unwrap_or_else(|| usage())),
            p => paths.push(p.to_string()),
        }
    }
    if paths.len() < 2 {
        usage();
    }
    let reference = strip_runtime_meta(&read(&paths[0]));
    let mut failed = false;
    let mut pairs = Vec::new();
    for p in &paths[1..] {
        let candidate = strip_runtime_meta(&read(p));
        let (clean, entry) = pair_entry(&reference, &candidate, &paths[0], p);
        pairs.push(entry);
        if clean {
            println!("perfgate: {} == {} (modulo runtime meta)", paths[0], p);
        } else {
            failed = true;
            let diff_line = reference
                .lines()
                .zip(candidate.lines())
                .position(|(a, b)| a != b)
                .map_or("line count differs".to_string(), |i| {
                    format!("first difference at stripped line {}", i + 1)
                });
            eprintln!(
                "perfgate: DETERMINISM FAILURE {} != {} ({diff_line})",
                paths[0], p
            );
        }
    }
    if let Some(out) = replay_out {
        let doc = Json::obj([
            ("schema_version", Json::UInt(1)),
            ("kind", Json::Str("perfgate-divergence-report".to_string())),
            ("clean", Json::Bool(!failed)),
            ("pairs", Json::Arr(pairs)),
        ]);
        if let Err(e) = std::fs::write(&out, doc.render()) {
            eprintln!("perfgate: cannot write {out}: {e}");
            return 2;
        }
        println!("perfgate: wrote divergence report to {out}");
    }
    i32::from(failed)
}

fn baseline(args: &[String]) -> i32 {
    let mut out_path = None;
    let mut reports = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-o" => out_path = it.next().cloned(),
            p => reports.push(p.to_string()),
        }
    }
    let (Some(out_path), false) = (out_path, reports.is_empty()) else {
        usage();
    };
    let entries: Vec<Json> = reports
        .iter()
        .map(|p| {
            let body = read(p);
            Json::obj([
                ("name", Json::Str(report_name(&body, p))),
                (
                    "threads",
                    Json::UInt(extract_number(&body, "threads").unwrap_or(1.0) as u64),
                ),
                ("wall_s", Json::Num(report_wall_s(&body, p))),
            ])
        })
        .collect();
    let doc = Json::obj([
        ("schema_version", Json::UInt(1)),
        ("entries", Json::Arr(entries)),
    ]);
    if let Err(e) = std::fs::write(&out_path, doc.render()) {
        eprintln!("perfgate: cannot write {out_path}: {e}");
        return 2;
    }
    println!("perfgate: wrote {out_path} ({} entries)", reports.len());
    0
}

/// Parses the `entries` of a baseline file written by [`baseline`]:
/// `(name, threads, wall_s)` triples, read line-by-line from this tool's
/// own format (keys appear in `name`, `threads`, `wall_s` order).
fn baseline_entries(body: &str) -> Vec<(String, u64, f64)> {
    let mut entries = Vec::new();
    let mut name: Option<String> = None;
    let mut threads = 1u64;
    for line in body.lines() {
        let t = line.trim_start();
        if let Some(rest) = t.strip_prefix("\"name\":") {
            let v = rest.trim().trim_end_matches(',');
            name = v
                .strip_prefix('"')
                .and_then(|s| s.strip_suffix('"'))
                .map(str::to_string);
        } else if let Some(rest) = t.strip_prefix("\"threads\":") {
            threads = rest.trim().trim_end_matches(',').parse().unwrap_or(1);
        } else if let Some(rest) = t.strip_prefix("\"wall_s\":") {
            if let (Some(n), Ok(w)) = (
                name.take(),
                rest.trim().trim_end_matches(',').parse::<f64>(),
            ) {
                entries.push((n, threads, w));
            }
        }
    }
    entries
}

/// Every `bench_*.json` under `dir`, sorted by file name so the gate
/// output (and any failure) is deterministic across filesystems.
fn bench_reports_in(dir: &str) -> Vec<String> {
    let entries = std::fs::read_dir(dir).unwrap_or_else(|e| {
        eprintln!("perfgate: cannot read directory {dir}: {e}");
        std::process::exit(2);
    });
    let mut found: Vec<String> = entries
        .filter_map(Result::ok)
        .filter(|e| {
            let name = e.file_name();
            let name = name.to_string_lossy();
            name.starts_with("bench_") && name.ends_with(".json")
        })
        .map(|e| e.path().to_string_lossy().into_owned())
        .collect();
    found.sort();
    if found.is_empty() {
        eprintln!("perfgate: no bench_*.json reports in {dir}");
        std::process::exit(2);
    }
    found
}

fn gate(args: &[String]) -> i32 {
    let mut baseline_path = None;
    let mut max_regress = 0.25f64;
    let mut reports = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--baseline" => baseline_path = it.next().cloned(),
            "--max-regress" => {
                max_regress = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--dir" => {
                let dir = it.next().cloned().unwrap_or_else(|| usage());
                reports.extend(bench_reports_in(&dir));
            }
            p => reports.push(p.to_string()),
        }
    }
    let (Some(baseline_path), false) = (baseline_path, reports.is_empty()) else {
        usage();
    };
    let entries = baseline_entries(&read(&baseline_path));
    let mut failed = false;
    for p in &reports {
        let body = read(p);
        let name = report_name(&body, p);
        let wall = report_wall_s(&body, p);
        let threads = extract_number(&body, "threads").unwrap_or(1.0) as u64;
        // Prefer the entry recorded at the same thread count; fall back to
        // any entry of the same name.
        let Some((_, _, base_wall)) = entries
            .iter()
            .find(|(n, t, _)| *n == name && *t == threads)
            .or_else(|| entries.iter().find(|(n, _, _)| *n == name))
        else {
            eprintln!("perfgate: no baseline entry for '{name}' in {baseline_path}");
            failed = true;
            continue;
        };
        let limit = base_wall * (1.0 + max_regress);
        let ratio = wall / base_wall;
        if wall > limit {
            failed = true;
            eprintln!(
                "perfgate: PERF REGRESSION '{name}': {wall:.3} s vs baseline {base_wall:.3} s \
                 ({ratio:.2}x > allowed {:.2}x)",
                1.0 + max_regress
            );
        } else {
            println!(
                "perfgate: '{name}' ok: {wall:.3} s vs baseline {base_wall:.3} s ({ratio:.2}x)"
            );
        }
    }
    i32::from(failed)
}

/// JSON-safe rendering of a KPI value: verdicts over empty matched sets
/// carry NaN, which the bench JSON writer (rightly) refuses to render.
fn kpi_value_json(value: f64) -> Json {
    if value.is_finite() {
        Json::Num(value)
    } else {
        Json::Str(format!("{value}"))
    }
}

fn ablate(args: &[String]) -> i32 {
    let mut plan_name = None;
    let mut registry_path = "results/ablation_registry.csv".to_string();
    let mut report_path = None;
    let mut commit = std::env::var("GITHUB_SHA").unwrap_or_else(|_| "local".to_string());
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--plan" => plan_name = it.next().cloned(),
            "--registry" => registry_path = it.next().cloned().unwrap_or_else(|| usage()),
            "--report" => report_path = it.next().cloned(),
            "--commit" => commit = it.next().cloned().unwrap_or_else(|| usage()),
            _ => usage(),
        }
    }
    let Some(plan_name) = plan_name else {
        usage();
    };
    let Some(plan) = plans::by_name(&plan_name) else {
        eprintln!("perfgate: unknown ablation plan '{plan_name}'");
        usage();
    };
    let pool = Pool::from_env();
    let report = match adaptive_photonics::run_ablation(&pool, &plan) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("perfgate: ablation plan '{plan_name}' failed to evaluate: {e}");
            return 2;
        }
    };
    print!("{}", report.render_text());
    let rows = report.registry_rows(&commit);
    if let Some(parent) = std::path::Path::new(&registry_path).parent() {
        if !parent.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("perfgate: cannot create {}: {e}", parent.display());
                return 2;
            }
        }
    }
    if let Err(e) = append_rows(std::path::Path::new(&registry_path), &rows) {
        eprintln!("perfgate: registry append to {registry_path} failed: {e}");
        return 2;
    }
    println!(
        "perfgate: appended {} rows to {registry_path} (commit {commit}, plan hash {})",
        rows.len(),
        report.plan_hash
    );
    if let Some(out) = report_path {
        let verdicts: Vec<Json> = report
            .verdicts
            .iter()
            .map(|v| {
                Json::obj([
                    ("spec", Json::Str(v.spec.clone())),
                    ("value", kpi_value_json(v.value)),
                    ("pass", Json::Bool(v.pass)),
                    ("detail", Json::Str(v.detail.clone())),
                ])
            })
            .collect();
        let doc = Json::obj([
            ("schema_version", Json::UInt(1)),
            ("kind", Json::Str("ablation-kpi-report".to_string())),
            ("plan", Json::Str(report.plan.clone())),
            ("plan_hash", Json::Str(report.plan_hash.clone())),
            ("commit", Json::Str(commit.clone())),
            ("cells", Json::UInt(report.results.len() as u64)),
            ("pass", Json::Bool(report.pass())),
            ("verdicts", Json::Arr(verdicts)),
        ]);
        if let Err(e) = std::fs::write(&out, doc.render()) {
            eprintln!("perfgate: cannot write {out}: {e}");
            return 2;
        }
        println!("perfgate: wrote KPI report to {out}");
    }
    if report.pass() {
        0
    } else {
        eprintln!("perfgate: ABLATION GATE FAILURE in plan '{plan_name}' (see verdicts above)");
        1
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        usage();
    };
    let code = match cmd.as_str() {
        "compare" => compare(rest),
        "baseline" => baseline(rest),
        "gate" => gate(rest),
        "ablate" => ablate(rest),
        _ => usage(),
    };
    std::process::exit(code);
}
