//! Streaming-workload benchmark: the shipped lazy demand generators of
//! `aps-collectives::workload` executed on a 16-port ring domain under
//! three switch policies — never-reconfigure (`static`), the eq. (7) DP
//! optimum planned over the materialized stream (`planned`), and the
//! online greedy rule deciding each *pulled* step from the streaming
//! executor's two-step observation window (`greedy`).
//!
//! Usage:
//!
//! ```text
//! cargo run -p aps-bench --release --bin fig_workloads [-- --bytes 4194304 --alpha-r 1e-5]
//! APS_THREADS=4 cargo run -p aps-bench --release --bin fig_workloads
//! ```
//!
//! Prints a per-cell summary and writes the machine-readable
//! `results/bench_workloads.json` report. Every simulated quantity is an
//! exact function of the cell inputs (generators are seeded, executors
//! deterministic), so the report's `data` section is bit-identical at any
//! `APS_THREADS` setting and `perfgate compare`/`gate` accept it
//! alongside the figure reports.

use aps_bench::cli::{emit_bench_report, parse_flags};
use aps_bench::output::Json;
use aps_collectives::workload::generators::{OnOffBursty, RandomPermutations, TrainingLoop};
use aps_collectives::Workload;
use aps_core::controller::{DpPlanned, Greedy, Static};
use aps_core::ScaleupDomain;
use aps_cost::units::{format_time, MIB};
use aps_cost::{CostParams, ReconfigModel};
use aps_fabric::CircuitSwitch;
use aps_matrix::Matching;
use aps_par::Pool;
use aps_sim::{run_scheduled_workload, run_workload, RunConfig, SimReport, StreamPricing};
use aps_topology::builders;

const N: usize = 16;

/// Builds the three benchmark generators, fresh per cell (each run
/// consumes the stream).
fn generators(bytes: f64) -> Vec<(&'static str, Box<dyn Workload>)> {
    vec![
        (
            "training-loop",
            Box::new(
                TrainingLoop::new(N, 4, bytes / 4.0, bytes, Some(2)).expect("valid training loop"),
            ) as Box<dyn Workload>,
        ),
        (
            "random-permutations",
            Box::new(RandomPermutations::new(N, bytes, Some(48), 42).expect("valid permutations")),
        ),
        (
            "on-off-bursty",
            Box::new(OnOffBursty::new(N, bytes, 4, 3, Some(64), 7).expect("valid bursty traffic")),
        ),
    ]
}

/// Runs one generator under one policy, returning the simulator report.
fn run_cell(policy: &str, workload: &mut dyn Workload, alpha_r: f64) -> SimReport {
    let base = builders::ring_unidirectional(N).expect("ring");
    let reconfig = ReconfigModel::constant(alpha_r).expect("valid delay");
    let cfg = RunConfig::paper_defaults();
    workload.reset();
    match policy {
        // Streaming adaptive runs: the controller decides each pulled step.
        "static" | "greedy" => {
            let mut fabric = CircuitSwitch::new(Matching::shift(N, 1).unwrap(), reconfig);
            let ctl: &dyn aps_core::controller::Controller =
                if policy == "static" { &Static } else { &Greedy };
            let (_, report) = run_workload(
                &mut fabric,
                &base,
                workload,
                ctl,
                StreamPricing::new(reconfig),
                &cfg,
            )
            .expect("streaming run");
            report
        }
        // DP optimum: plan over the materialized stream, then replay the
        // switch schedule against the (rewound) stream.
        "planned" => {
            let mut domain = ScaleupDomain::new(base, CostParams::paper_defaults(), reconfig);
            let (switches, _) = domain
                .plan_workload(workload, usize::MAX, &DpPlanned)
                .expect("plan");
            workload.reset();
            let mut fabric = CircuitSwitch::new(Matching::shift(N, 1).unwrap(), reconfig);
            run_scheduled_workload(
                &mut fabric,
                &Matching::shift(N, 1).unwrap(),
                workload,
                &switches,
                &cfg,
            )
            .expect("scheduled replay")
        }
        other => unreachable!("unknown policy {other}"),
    }
}

fn main() {
    let flags = parse_flags(&["--bytes", "--alpha-r"]);
    let bytes = flags.parsed_or("bytes", 4.0 * MIB);
    let alpha_r = flags.parsed_or("alpha-r", 10e-6);

    let pool = Pool::from_env();
    let policies = ["static", "planned", "greedy"];
    println!(
        "Streaming workload generators on a {N}-port ring — volume {:.0} KiB, α_r = {}, \
         static/planned/greedy policies, {} worker thread(s)\n",
        bytes / 1024.0,
        format_time(alpha_r),
        pool.threads()
    );

    let started = std::time::Instant::now();
    let mut cell_reports = Vec::new();
    for policy in policies {
        for (name, mut workload) in generators(bytes) {
            let report = run_cell(policy, &mut *workload, alpha_r);
            println!(
                "── {name:<20} {policy:<8} {:>4} steps  makespan {:>12}  {} reconfigs",
                report.steps.len(),
                format_time(report.total_s()),
                report.reconfig_events(),
            );
            cell_reports.push(Json::obj([
                ("workload", Json::Str(name.into())),
                ("policy", Json::Str(policy.into())),
                ("steps", Json::UInt(report.steps.len() as u64)),
                ("makespan_s", Json::Num(report.total_s())),
                (
                    "reconfig_events",
                    Json::UInt(report.reconfig_events() as u64),
                ),
                ("reconfig_s", Json::Num(report.reconfig_s())),
                ("transfer_s", Json::Num(report.transfer_s())),
            ]));
        }
    }
    let wall_s = started.elapsed().as_secs_f64();
    println!();

    let data = Json::obj([
        ("figure", Json::Str("workloads".into())),
        ("n", Json::UInt(N as u64)),
        ("bytes", Json::Num(bytes)),
        ("alpha_r_s", Json::Num(alpha_r)),
        (
            "policies",
            Json::Arr(policies.iter().map(|p| Json::Str((*p).into())).collect()),
        ),
        ("cells", Json::Arr(cell_reports)),
    ]);
    emit_bench_report("workloads", &pool, wall_s, data);
}
