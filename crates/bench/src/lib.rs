//! # aps-bench — figure regeneration harnesses and workload generators
//!
//! Every table and figure of the paper maps to a binary here (see
//! `DESIGN.md` at the workspace root for the experiment index):
//!
//! * `fig1` — the eight heatmaps of Figure 1 (OPT vs BvN on the top row,
//!   OPT vs static ring on the bottom row; halving-doubling / Swing /
//!   All-to-All across columns, plus the α = 10 µs variants);
//! * `fig2` — Figure 2's OPT vs best-of-both heatmap and the regime map
//!   showing the transitional diagonal;
//! * `ablations` — the research-agenda experiments A1–A7;
//! * `fig_multitenant` — the named multi-tenant fabric scenarios
//!   (`aps-sim::scenarios`) across a reconfiguration-delay ladder, under
//!   static and DP-planned per-tenant switch policies;
//! * `perfgate` — the CI gatekeeper that checks bench reports for
//!   thread-count determinism (`compare`), distills committed baselines
//!   (`baseline`), and fails on wall-clock regressions (`gate`).
//!
//! The figure harnesses evaluate their sweep grids on an
//! `APS_THREADS`-sized [`aps_par::Pool`] and emit versioned JSON reports
//! (`results/bench_<name>.json`, see [`output`]) whose `data` sections are
//! bit-identical at any thread count.
//!
//! Criterion benches (`benches/`) time the computational kernels: the DP
//! solver, BvN decomposition, θ solvers and the event simulator.

pub mod cli;
pub mod figures;
pub mod output;
pub mod workload;

pub use figures::{panel, run_panel, run_panel_on, Panel, PanelSpec};
