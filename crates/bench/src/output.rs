//! Result output: CSV and versioned JSON reports under `results/`.
//!
//! ## The JSON bench report (`results/bench_<name>.json`)
//!
//! Machine-readable sweep artifacts that CI can diff and gate on. The
//! serializer is hand-rolled (no crates.io access) with **stable key
//! order**, two-space indentation, one key per line, and locale-independent
//! number formatting (Rust's shortest round-trip `f64` display), so the
//! same data always produces the same bytes.
//!
//! A report has exactly two top-level sections:
//!
//! * `meta` — run provenance: schema version, report name, seed, **thread
//!   count and wall-clock**. These two are the only values that may differ
//!   between runs of the same code.
//! * `data` — the deterministic payload (grid axes, per-cell policy
//!   completion times, θ-cache counters). Bit-identical at any
//!   `APS_THREADS` setting; `perfgate compare` enforces exactly that by
//!   comparing reports with the `meta` runtime lines stripped.

use std::io::Write;
use std::path::{Path, PathBuf};

/// Default output directory, relative to the invocation directory.
pub const RESULTS_DIR: &str = "results";

/// Current bench-report schema version; bump on any `data` layout change.
/// v2: `bench_multitenant` gained the `policies` family list and the
/// controller-ablation (`greedy`) cell family.
/// v3: the `bench_workloads` report family (streaming workload
/// generators × static/planned/greedy) joined the gated set.
pub const SCHEMA_VERSION: u64 = 3;

/// `meta` keys that legitimately differ between runs of identical code.
/// `perfgate compare` strips lines carrying these keys before byte
/// comparison.
pub const RUNTIME_META_KEYS: [&str; 2] = ["threads", "wall_s"];

/// Writes `content` to `<dir>/<name>`, creating the directory if needed.
/// Returns the written path.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_result_in(
    dir: impl AsRef<Path>,
    name: &str,
    content: &str,
) -> std::io::Result<PathBuf> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path)?;
    f.write_all(content.as_bytes())?;
    Ok(path)
}

/// Writes `content` to `results/<name>` (see [`write_result_in`]).
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_result(name: &str, content: &str) -> std::io::Result<PathBuf> {
    write_result_in(RESULTS_DIR, name, content)
}

/// A JSON value with insertion-ordered object keys.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer (serialized without a decimal point).
    UInt(u64),
    /// Finite float, serialized with Rust's shortest round-trip display.
    Num(f64),
    /// String (escaped on render).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object; keys render in insertion order — never sorted, never hashed.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for objects.
    pub fn obj(entries: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// An array of floats.
    pub fn nums(values: impl IntoIterator<Item = f64>) -> Json {
        Json::Arr(values.into_iter().map(Json::Num).collect())
    }

    /// Renders the value as pretty-printed JSON (two-space indent, one
    /// object key per line, scalar-only arrays inline) with a trailing
    /// newline.
    ///
    /// # Panics
    ///
    /// Panics on non-finite floats: NaN/∞ have no JSON representation and
    /// a bench report containing one is a bug worth failing loudly on.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn is_scalar(&self) -> bool {
        !matches!(self, Json::Arr(_) | Json::Obj(_))
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        match self {
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Num(x) => {
                assert!(x.is_finite(), "non-finite value {x} in a JSON report");
                // `{}` on f64 is locale-independent and round-trips, but
                // renders whole numbers without a distinguishing mark;
                // keep them visibly floats.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&format!("{x}"));
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32));
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                } else if items.iter().all(Json::is_scalar) {
                    out.push('[');
                    for (i, v) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        v.render_into(out, indent);
                    }
                    out.push(']');
                } else {
                    out.push_str("[\n");
                    let pad = "  ".repeat(indent + 1);
                    for (i, v) in items.iter().enumerate() {
                        out.push_str(&pad);
                        v.render_into(out, indent + 1);
                        if i + 1 < items.len() {
                            out.push(',');
                        }
                        out.push('\n');
                    }
                    out.push_str(&"  ".repeat(indent));
                    out.push(']');
                }
            }
            Json::Obj(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                } else {
                    out.push_str("{\n");
                    let pad = "  ".repeat(indent + 1);
                    for (i, (k, v)) in entries.iter().enumerate() {
                        out.push_str(&pad);
                        out.push('"');
                        out.push_str(k);
                        out.push_str("\": ");
                        v.render_into(out, indent + 1);
                        if i + 1 < entries.len() {
                            out.push(',');
                        }
                        out.push('\n');
                    }
                    out.push_str(&"  ".repeat(indent));
                    out.push('}');
                }
            }
        }
    }
}

/// Run provenance of a bench report (the `meta` section).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchMeta {
    /// Report name; the file becomes `bench_<name>.json`.
    pub name: String,
    /// Seed of any randomized workload in the run (0 for the deterministic
    /// paper figures).
    pub seed: u64,
    /// Worker threads the run used (`APS_THREADS`).
    pub threads: usize,
    /// End-to-end wall-clock of the run in seconds.
    pub wall_s: f64,
}

/// Assembles the canonical `{meta, data}` report document.
pub fn bench_report(meta: &BenchMeta, data: Json) -> Json {
    Json::obj([
        (
            "meta",
            Json::obj([
                ("schema_version", Json::UInt(SCHEMA_VERSION)),
                ("name", Json::Str(meta.name.clone())),
                ("seed", Json::UInt(meta.seed)),
                ("threads", Json::UInt(meta.threads as u64)),
                ("wall_s", Json::Num(meta.wall_s)),
            ]),
        ),
        ("data", data),
    ])
}

/// Renders and writes `bench_<name>.json` into `dir`.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_bench_report_in(
    dir: impl AsRef<Path>,
    meta: &BenchMeta,
    data: Json,
) -> std::io::Result<PathBuf> {
    write_result_in(
        dir,
        &format!("bench_{}.json", meta.name),
        &bench_report(meta, data).render(),
    )
}

/// [`write_bench_report_in`] into the default [`RESULTS_DIR`].
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_bench_report(meta: &BenchMeta, data: Json) -> std::io::Result<PathBuf> {
    write_bench_report_in(RESULTS_DIR, meta, data)
}

/// Strips the lines carrying [`RUNTIME_META_KEYS`] — the only
/// legitimately run-dependent bytes of a report. What remains must be
/// byte-identical across runs of the same code at any thread count.
pub fn strip_runtime_meta(report: &str) -> String {
    report
        .lines()
        .filter(|line| {
            let t = line.trim_start();
            !RUNTIME_META_KEYS
                .iter()
                .any(|k| t.starts_with(&format!("\"{k}\":")))
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Extracts the first `"key": <number>` scalar from a report rendered by
/// [`Json::render`] (one key per line). Not a general JSON parser — it
/// reads back only what this module writes.
pub fn extract_number(report: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    report.lines().find_map(|line| {
        let t = line.trim_start().strip_prefix(&needle)?;
        t.trim().trim_end_matches(',').parse::<f64>().ok()
    })
}

/// Extracts the first `"key": "<string>"` from a rendered report. Same
/// caveat as [`extract_number`]: only for this module's own output.
pub fn extract_string(report: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    report.lines().find_map(|line| {
        let t = line.trim_start().strip_prefix(&needle)?;
        let t = t.trim().trim_end_matches(',');
        let inner = t.strip_prefix('"')?.strip_suffix('"')?;
        Some(inner.to_string())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("aps-bench-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_into_explicit_dir_without_touching_cwd() {
        let tmp = tmp_dir("write");
        let p = write_result_in(&tmp, "unit.csv", "a,b\n1,2\n").unwrap();
        assert!(p.starts_with(&tmp));
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "a,b\n1,2\n");
        std::fs::remove_dir_all(&tmp).ok();
    }

    #[test]
    fn json_rendering_is_stable_and_ordered() {
        let v = Json::obj([
            ("b_first", Json::UInt(2)),
            ("a_second", Json::nums([1.0, 0.5, 1e-7])),
            ("s", Json::Str("q\"\\\n".into())),
            ("nested", Json::obj([("x", Json::Bool(true))])),
            ("empty", Json::Arr(vec![])),
        ]);
        let s = v.render();
        // Insertion order, not alphabetical.
        assert!(s.find("b_first").unwrap() < s.find("a_second").unwrap());
        // Scalar arrays inline; floats keep a decimal point; escaping works.
        assert!(s.contains("[1.0, 0.5, 0.0000001]"));
        assert!(s.contains("\"q\\\"\\\\\\n\""));
        assert!(s.contains("\"empty\": []"));
        // Stable: rendering twice is byte-identical.
        assert_eq!(s, v.render());
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_floats_are_rejected() {
        Json::Num(f64::NAN).render();
    }

    #[test]
    fn bench_report_roundtrips_meta_and_strips_runtime_keys() {
        let meta = BenchMeta {
            name: "unit".into(),
            seed: 7,
            threads: 4,
            wall_s: 1.25,
        };
        let report = bench_report(&meta, Json::obj([("cells", Json::nums([1.0]))])).render();
        assert_eq!(extract_string(&report, "name").as_deref(), Some("unit"));
        assert_eq!(extract_number(&report, "seed"), Some(7.0));
        assert_eq!(extract_number(&report, "wall_s"), Some(1.25));
        assert_eq!(
            extract_number(&report, "schema_version"),
            Some(SCHEMA_VERSION as f64)
        );

        // A rerun differing only in threads/wall_s is identical once the
        // runtime meta lines are stripped.
        let rerun = bench_report(
            &BenchMeta {
                threads: 1,
                wall_s: 9.75,
                ..meta
            },
            Json::obj([("cells", Json::nums([1.0]))]),
        )
        .render();
        assert_ne!(report, rerun);
        assert_eq!(strip_runtime_meta(&report), strip_runtime_meta(&rerun));
    }

    #[test]
    fn bench_report_file_name_carries_the_report_name() {
        let tmp = tmp_dir("report");
        let meta = BenchMeta {
            name: "fig0".into(),
            seed: 0,
            threads: 1,
            wall_s: 0.0,
        };
        let p = write_bench_report_in(&tmp, &meta, Json::obj([])).unwrap();
        assert!(p.ends_with("bench_fig0.json"));
        let body = std::fs::read_to_string(&p).unwrap();
        assert!(body.starts_with("{\n  \"meta\": {"));
        assert!(body.ends_with("}\n"));
        std::fs::remove_dir_all(&tmp).ok();
    }
}
