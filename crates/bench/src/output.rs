//! Result output: CSV files under `results/`.

use std::io::Write;
use std::path::{Path, PathBuf};

/// Default output directory, relative to the invocation directory.
pub const RESULTS_DIR: &str = "results";

/// Writes `content` to `results/<name>`, creating the directory if needed.
/// Returns the written path.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_result(name: &str, content: &str) -> std::io::Result<PathBuf> {
    let dir = Path::new(RESULTS_DIR);
    std::fs::create_dir_all(dir)?;
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path)?;
    f.write_all(content.as_bytes())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_into_results_dir() {
        let tmp = std::env::temp_dir().join(format!("aps-bench-test-{}", std::process::id()));
        std::fs::create_dir_all(&tmp).unwrap();
        let old = std::env::current_dir().unwrap();
        std::env::set_current_dir(&tmp).unwrap();
        let p = write_result("unit.csv", "a,b\n1,2\n").unwrap();
        let back = std::fs::read_to_string(&p).unwrap();
        std::env::set_current_dir(old).unwrap();
        assert_eq!(back, "a,b\n1,2\n");
        std::fs::remove_dir_all(&tmp).ok();
    }
}
