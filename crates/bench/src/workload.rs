//! Synthetic workload generators.
//!
//! The paper's framework "applies to any collective communication algorithm
//! (including custom ones) that can be expressed as a sequence of
//! matchings" (§3.3). These generators produce such custom sequences —
//! random permutation schedules with controllable volume skew — used by the
//! ablation harness and the property tests to exercise the scheduler beyond
//! the textbook collectives.

use aps_collectives::{CollectiveError, CollectiveKind, Schedule, Step};
use aps_matrix::Matching;
use rand::prelude::*;

/// A random full permutation without fixed points (derangement) — the
/// single implementation lives with the streaming generators in
/// `aps-collectives` ([`aps_collectives::workload::generators`]).
pub use aps_collectives::workload::generators::random_derangement;

/// A random partial matching covering roughly `density` of the nodes.
pub fn random_partial_matching(n: usize, density: f64, rng: &mut StdRng) -> Matching {
    let full = random_derangement(n, rng);
    let pairs: Vec<(usize, usize)> = full
        .pairs()
        .filter(|_| rng.random_bool(density.clamp(0.0, 1.0)))
        .collect();
    Matching::from_pairs(n, &pairs).expect("subset of a matching is a matching")
}

/// A custom collective: `steps` random derangements with volumes drawn
/// log-uniformly from `[min_bytes, max_bytes]`.
///
/// # Errors
///
/// Propagates schedule validation errors (none for valid inputs).
pub fn random_schedule(
    n: usize,
    steps: usize,
    min_bytes: f64,
    max_bytes: f64,
    seed: u64,
) -> Result<Schedule, CollectiveError> {
    assert!(
        min_bytes > 0.0 && max_bytes >= min_bytes,
        "bad volume range"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let ratio = max_bytes / min_bytes;
    let steps = (0..steps)
        .map(|_| Step {
            matching: random_derangement(n, &mut rng),
            bytes_per_pair: min_bytes * ratio.powf(rng.random::<f64>()),
        })
        .collect();
    Schedule::new(n, CollectiveKind::Composite, "random", steps)
}

/// One simulated training iteration of a data+expert-parallel model: per
/// layer a gradient AllReduce (bandwidth-optimal) and, for MoE layers, an
/// All-to-All token shuffle — concatenated into one composite schedule
/// (§3.3: the framework "applies … even to a sequence of such collective
/// communication operations e.g., All-to-All after an AllReduce").
///
/// # Errors
///
/// Propagates collective construction errors.
pub fn training_iteration(
    n: usize,
    layers: usize,
    grad_bytes_per_layer: f64,
    moe_every: usize,
    moe_buffer_bytes: f64,
) -> Result<Schedule, CollectiveError> {
    let mut composite: Option<Schedule> = None;
    for layer in 0..layers {
        let ar = aps_collectives::allreduce::any_n::build(n, grad_bytes_per_layer)?;
        composite = Some(match composite {
            None => ar.schedule,
            Some(c) => c.then(ar.schedule)?,
        });
        if moe_every > 0 && layer % moe_every == 0 {
            let a2a = aps_collectives::alltoall::linear_shift(n, moe_buffer_bytes)?;
            composite = Some(composite.take().expect("set above").then(a2a.schedule)?);
        }
    }
    composite.ok_or(CollectiveError::TooFewNodes { n: 0, min: 1 })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derangements_have_no_fixed_points() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [2, 3, 5, 16, 64] {
            let m = random_derangement(n, &mut rng);
            assert!(m.is_full());
            assert!(m.pairs().all(|(s, d)| s != d));
        }
    }

    #[test]
    fn random_schedule_is_seed_deterministic() {
        let a = random_schedule(16, 10, 1e3, 1e6, 42).unwrap();
        let b = random_schedule(16, 10, 1e3, 1e6, 42).unwrap();
        let c = random_schedule(16, 10, 1e3, 1e6, 43).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.num_steps(), 10);
        for s in a.steps() {
            assert!(s.bytes_per_pair >= 1e3 && s.bytes_per_pair <= 1e6);
        }
    }

    #[test]
    fn training_iteration_composes() {
        let s = training_iteration(16, 4, 1e6, 2, 2e6).unwrap();
        // 4 AllReduce (2·log₂16 = 8 steps each) + 2 All-to-All (15 steps).
        assert_eq!(s.num_steps(), 4 * 8 + 2 * 15);
        assert_eq!(s.kind(), aps_collectives::CollectiveKind::Composite);
        assert!(s.algorithm().contains("halving-doubling"));
        assert!(s.algorithm().contains("linear-shift"));
        // No MoE layers at all.
        let dense = training_iteration(16, 3, 1e6, 0, 0.0);
        assert!(dense.is_err() || dense.unwrap().num_steps() == 24);
    }

    #[test]
    fn partial_matching_density() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = random_partial_matching(64, 0.5, &mut rng);
        assert!(m.len() < 64);
        assert!(!m.is_empty());
        let empty = random_partial_matching(64, 0.0, &mut rng);
        assert!(empty.is_empty());
    }
}
