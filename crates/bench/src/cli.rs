//! Shared CLI and report boilerplate for the figure bins.
//!
//! Every figure bin (`fig1`, `fig2`, `fig_multitenant`) parses the same
//! kind of `--flag value` argument list, runs a sweep on an
//! `APS_THREADS`-sized pool and emits a versioned JSON report into
//! `results/`. The copy-pasted argv loops and report-writing match arms
//! used to live in each bin; they live here once now.

use crate::output::{write_bench_report, BenchMeta, Json};
use aps_par::Pool;
use std::collections::BTreeMap;

/// Parsed `--flag value` pairs (keys stored without the leading dashes).
#[derive(Debug, Clone, Default)]
pub struct Flags(BTreeMap<String, String>);

/// Prints a CLI error and exits with the conventional usage status.
fn usage_error(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

/// Parses the process argument list against an allowlist of `--flag`
/// names, each of which takes exactly one value. Unknown flags and
/// missing values print an error and exit(2), matching the bins'
/// historical behavior.
pub fn parse_flags(allowed: &[&str]) -> Flags {
    let mut map = BTreeMap::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if !allowed.contains(&a.as_str()) {
            usage_error(&format!("unknown argument '{a}' (expected {allowed:?})"));
        }
        match args.next() {
            Some(v) => {
                map.insert(a.trim_start_matches('-').to_string(), v);
            }
            None => usage_error(&format!("{a} requires a value")),
        }
    }
    Flags(map)
}

impl Flags {
    /// The raw value of a flag, if present (key without dashes).
    pub fn get(&self, key: &str) -> Option<&str> {
        self.0.get(key).map(String::as_str)
    }

    /// Parses a flag's value, falling back to `default` when the flag is
    /// absent; an unparsable value prints an error and exits(2).
    pub fn parsed_or<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        match self.0.get(key) {
            None => default,
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| usage_error(&format!("--{key} got unparsable value '{v}'"))),
        }
    }

    /// Test hook: builds flags from explicit pairs.
    pub fn from_pairs(pairs: &[(&str, &str)]) -> Self {
        Flags(
            pairs
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        )
    }
}

/// Writes the canonical `results/bench_<name>.json` report and prints the
/// path; a write failure is fatal (exit 1), because a missing report
/// breaks the CI perf gate downstream.
pub fn emit_bench_report(name: &str, pool: &Pool, wall_s: f64, data: Json) {
    let meta = BenchMeta {
        name: name.into(),
        seed: 0,
        threads: pool.threads(),
        wall_s,
    };
    match write_bench_report(&meta, data) {
        Ok(path) => println!("  → {} (wall {wall_s:.3} s)", path.display()),
        Err(e) => {
            eprintln!("json report write failed: {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_parse_and_default() {
        let f = Flags::from_pairs(&[("n", "256"), ("panel", "c")]);
        assert_eq!(f.get("panel"), Some("c"));
        assert_eq!(f.get("missing"), None);
        assert_eq!(f.parsed_or("n", 64usize), 256);
        assert_eq!(f.parsed_or("bytes", 4.5f64), 4.5);
    }
}
