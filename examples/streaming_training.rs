//! Streaming a training loop through the lazy `Workload` API.
//!
//! The materialized examples precompute every step before simulating.
//! This one never does: a pipeline-parallel training loop streams its
//! fwd/bwd/AllReduce steps one at a time into the adaptive executor,
//! the controller decides each *pulled* step online, and a 100,000-step
//! multi-epoch run executes in O(1) schedule memory via the totals
//! runner — the "collective will" as an open-ended stream rather than a
//! finite plan.
//!
//! ```text
//! cargo run --release --example streaming_training
//! ```

use adaptive_photonics::prelude::*;
use aps_collectives::workload::generators::TrainingLoop;
use aps_cost::units::{format_bytes, format_time, MIB};

fn main() {
    let n = 16;
    let micro = 4;
    let act = 8.0 * MIB;
    let grad = 32.0 * MIB;

    // Two epochs, streamed: plan-free adaptive execution under three
    // controllers.
    println!(
        "Pipeline training loop on {n} GPUs: {micro} microbatches × {} activations, {} gradients\n",
        format_bytes(act),
        format_bytes(grad),
    );
    println!(
        "{:>10} | {:>12} | {:>9}",
        "controller", "makespan", "reconfigs"
    );
    for (name, run) in [
        ("static", simulate(n, micro, act, grad, Static)),
        ("greedy", simulate(n, micro, act, grad, Greedy)),
        ("threshold", simulate(n, micro, act, grad, Threshold)),
    ] {
        println!(
            "{:>10} | {:>12} | {:>9}",
            name,
            format_time(run.report.total_s()),
            run.report.reconfig_events(),
        );
    }

    // The same stream, 6,250 epochs deep — 100,000 steps with O(1)
    // schedule *and* report memory.
    let epochs = 6250;
    let mut long = Experiment::domain(topology::builders::ring_unidirectional(n).unwrap())
        .reconfig(ReconfigModel::constant(10e-6).unwrap())
        .controller(Greedy)
        .workload(TrainingLoop::new(n, micro, act, grad, Some(epochs)).expect("training loop"));
    let summary = long.simulate_summary(usize::MAX).expect("streamed run");
    println!(
        "\n{} epochs streamed lazily: {} steps, {} matched, makespan {}, transfer {}",
        epochs,
        summary.steps,
        summary.matched_steps,
        format_time(summary.total_s()),
        format_time(aps_cost::units::picos_to_secs(summary.transfer_ps)),
    );
}

fn simulate(
    n: usize,
    micro: usize,
    act: f64,
    grad: f64,
    controller: impl Controller + 'static,
) -> adaptive_photonics::SimRun {
    Experiment::domain(topology::builders::ring_unidirectional(n).unwrap())
        .reconfig(ReconfigModel::constant(10e-6).unwrap())
        .controller(controller)
        .workload(TrainingLoop::new(n, micro, act, grad, Some(2)).expect("training loop"))
        .simulate()
        .expect("streamed simulation")
}
