//! Event-level trace of the photonic fabric executing a collective.
//!
//! Runs the discrete-event simulator on a small domain and dumps the
//! timeline: barriers, reconfigurations (with port counts), flow releases
//! and step completions — the microscope view behind the aggregate numbers.
//! Also demonstrates the wavelength-switched fabric variant and fault
//! injection (a slow laser).
//!
//! ```text
//! cargo run --release --example fabric_trace
//! ```

use adaptive_photonics::prelude::*;
use aps_cost::units::{format_time, MIB};

fn main() {
    let n = 8;
    let coll = collectives::allreduce::halving_doubling::build(n, MIB).expect("collective");
    let s = coll.schedule.num_steps();
    let ring = Matching::shift(n, 1).expect("ring config");

    // Plan with the analytic optimizer first.
    let mut domain = ScaleupDomain::new(
        topology::builders::ring_unidirectional(n).expect("ring"),
        CostParams::paper_defaults(),
        ReconfigModel::constant(5e-6).expect("α_r"),
    );
    let (switches, report) = domain.plan(&coll.schedule).expect("plan");
    println!(
        "planned schedule: {}  (analytic: {})\n",
        switches.compact(),
        format_time(report.total_s())
    );

    // Execute on a circuit switch.
    println!("— circuit switch, optimal schedule —");
    let mut fabric = CircuitSwitch::new(ring.clone(), ReconfigModel::constant(5e-6).unwrap());
    let cfg = RunConfig {
        barrier: BarrierModel::Constant { latency_s: 200e-9 },
        ..RunConfig::paper_defaults()
    };
    let run = sim(&mut fabric, &ring, &coll, &switches, &cfg);
    println!("simulated completion: {}\n", format_time(run.total_s()));

    // Same collective on a wavelength fabric with one degraded laser.
    println!("— wavelength fabric (2 µs tuning, port 3 degraded to 20 µs), all matched —");
    let mut wdm = WavelengthFabric::uniform(ring.clone(), 2e-6).expect("fabric");
    wdm.set_port_tuning(3, 20e-6).expect("fault injection");
    let run = sim(
        &mut wdm,
        &ring,
        &coll,
        &SwitchSchedule::all_matched(s),
        &cfg,
    );
    println!("simulated completion: {}", format_time(run.total_s()));
}

fn sim(
    fabric: &mut dyn Fabric,
    base: &Matching,
    coll: &Collective,
    switches: &SwitchSchedule,
    cfg: &RunConfig,
) -> SimReport {
    let run = run_collective(fabric, base, &coll.schedule, switches, cfg).expect("simulate");
    for ev in &run.trace {
        println!("  {ev}");
    }
    run
}
