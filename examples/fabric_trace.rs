//! Event-level trace of the photonic fabric executing a collective.
//!
//! Runs the adaptive simulator on a small domain and dumps the timeline:
//! controller decisions (with their rationale), barriers, reconfigurations
//! (with port counts), flow releases and step completions — the microscope
//! view behind the aggregate numbers. Also demonstrates swapping the
//! controller and the fabric model: the same experiment re-runs with the
//! always-reconfigure controller on a wavelength-switched fabric with one
//! degraded laser (fault injection), via [`Experiment::simulate_on`].
//!
//! ```text
//! cargo run --release --example fabric_trace
//! ```

use adaptive_photonics::prelude::*;
use aps_cost::units::{format_time, MIB};

fn main() {
    let n = 8;
    let coll = collectives::allreduce::halving_doubling::build(n, MIB).expect("collective");
    let ring = Matching::shift(n, 1).expect("ring config");

    let cfg = RunConfig {
        barrier: BarrierModel::Constant { latency_s: 200e-9 },
        ..RunConfig::paper_defaults()
    };
    let mut exp = Experiment::domain(topology::builders::ring_unidirectional(n).expect("ring"))
        .reconfig(ReconfigModel::constant(5e-6).expect("α_r"))
        .sim_config(cfg)
        .collective(&coll);

    // The DP controller plans analytically, then drives the simulator.
    let plan = exp.plan().expect("plan");
    println!(
        "planned schedule: {}  (analytic: {})\n",
        plan.switches.compact(),
        format_time(plan.report.total_s())
    );

    println!("— circuit switch, opt controller —");
    let run = exp.simulate().expect("simulate");
    for ev in &run.report.trace {
        println!("  {ev}");
    }
    println!(
        "simulated completion: {}\n",
        format_time(run.report.total_s())
    );

    // Same collective on a wavelength fabric with one degraded laser and
    // the always-reconfigure controller.
    println!("— wavelength fabric (2 µs tuning, port 3 degraded to 20 µs), bvn controller —");
    let mut wdm = WavelengthFabric::uniform(ring, 2e-6).expect("fabric");
    wdm.set_port_tuning(3, 20e-6).expect("fault injection");
    let mut exp = exp.controller(AlwaysReconfigure);
    let run = exp.simulate_on(&mut wdm).expect("simulate");
    for ev in &run.report.trace {
        println!("  {ev}");
    }
    println!(
        "simulated completion: {}",
        format_time(run.report.total_s())
    );
}
