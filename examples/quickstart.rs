//! Quickstart: plan one AllReduce on an adaptive photonic scale-up domain.
//!
//! Builds the paper's evaluation setup (§3.4) — 64 GPUs, 800 Gbps
//! transceivers, unidirectional ring base — as an [`Experiment`], then asks
//! the default controller (the eq. (7) DP optimum) when the fabric should
//! reconfigure for a bandwidth-optimal AllReduce, and prints the resulting
//! circuit-switch schedule with its cost breakdown.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use adaptive_photonics::prelude::*;
use aps_cost::units::{format_bytes, format_time, MIB};

fn main() {
    let n = 64;
    let message = 16.0 * MIB;
    let alpha_r = 10e-6;

    let coll = collectives::allreduce::halving_doubling::build(n, message).expect("collective");
    coll.check().expect("collective semantics verified");

    let mut exp = Experiment::domain(topology::builders::ring_unidirectional(n).expect("ring"))
        .reconfig(ReconfigModel::constant(alpha_r).expect("α_r"))
        .collective(&coll); // default controller: DpPlanned (eq. (7))

    println!(
        "AllReduce (halving-doubling), {} per GPU, n = {n}, α_r = {}, controller = {}\n",
        format_bytes(message),
        format_time(alpha_r),
        exp.controller_name(),
    );

    let plan = exp.plan().expect("plan");
    println!("optimal switch schedule : {}", plan.switches.compact());
    println!("  (G = stay on base ring, M = reconfigure to the step's matching)\n");
    println!(
        "completion time         : {}",
        format_time(plan.report.total_s())
    );
    println!(
        "  latency   (s·α)       : {}",
        format_time(plan.report.latency_s)
    );
    println!(
        "  propagation (δ·ℓ)     : {}",
        format_time(plan.report.propagation_s)
    );
    println!(
        "  transmission (β·m/θ)  : {}",
        format_time(plan.report.transmission_s)
    );
    println!(
        "  reconfiguration       : {} ({} events)\n",
        format_time(plan.report.reconfig_s),
        plan.report.reconfig_events
    );

    let cmp = exp.compare().expect("compare");
    println!("static ring             : {}", format_time(cmp.static_s));
    println!("per-step BvN            : {}", format_time(cmp.bvn_s));
    println!("threshold heuristic     : {}", format_time(cmp.threshold_s));
    println!("optimized               : {}", format_time(cmp.opt_s));
    println!(
        "\nspeedup vs static {:.2}x, vs BvN {:.2}x, vs best-of-both {:.2}x",
        cmp.speedup_vs_static(),
        cmp.speedup_vs_bvn(),
        cmp.speedup_vs_best_of_both()
    );

    // The same experiment also runs on the fluid simulator, with the
    // controller deciding online and tagging each decision in the trace.
    let run = exp.simulate().expect("simulate");
    println!(
        "\nfluid simulation        : {} (schedule {})",
        format_time(run.report.total_s()),
        run.switches.compact()
    );
}
