//! AllReduce planner: which algorithm + switching policy wins at each
//! message size?
//!
//! The §4 research agenda observes that propagation delays change the
//! algorithm ranking: on static rings the ring algorithm stays optimal even
//! for short messages, while reconfigurable fabrics make fewer-step
//! algorithms (halving-doubling, Swing, recursive doubling) attractive.
//! This planner builds one [`Experiment`] per algorithm × size, lets the
//! default DP controller pick the switch schedule, and prints the table a
//! runtime would consult to pick an algorithm.
//!
//! ```text
//! cargo run --release --example allreduce_planner [-- <n> <alpha_r_us>]
//! ```

use adaptive_photonics::prelude::*;
use aps_collectives::allreduce::Algorithm;
use aps_cost::units::{format_bytes, format_time, GIB, KIB};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(64);
    let alpha_r_us: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(10.0);
    let alpha_r = alpha_r_us * 1e-6;

    println!(
        "AllReduce planning on a {n}-GPU photonic domain (ring base, α_r = {})\n",
        format_time(alpha_r)
    );
    println!(
        "{:>10} | {:>22} {:>22} {:>22} {:>22}",
        "size", "ring", "recursive-doubling", "halving-doubling", "swing"
    );

    let base = topology::builders::ring_unidirectional(n).expect("ring");
    let reconfig = ReconfigModel::constant(alpha_r).expect("α_r");

    let mut size = KIB;
    while size <= GIB {
        let mut row = format!("{:>10} |", format_bytes(size));
        let mut best = (f64::INFINITY, "");
        for alg in Algorithm::ALL {
            let coll = alg.build(n, size).expect("collective");
            let plan = Experiment::domain(base.clone())
                .reconfig(reconfig)
                .collective(&coll)
                .plan()
                .expect("plan");
            let t = plan.report.total_s();
            if t < best.0 {
                best = (t, alg.name());
            }
            row.push_str(&format!(
                " {:>12} ({:>3}M/{:>3})",
                format_time(t),
                plan.switches.matched_steps(),
                plan.switches.len()
            ));
        }
        println!("{row}   ← best: {}", best.1);
        size *= 16.0;
    }
    println!("\nEach cell: completion time (matched steps / total steps in the OPT schedule).");
}
