//! Halo exchange on a photonic scale-up domain.
//!
//! HPC stencil codes exchange boundary strips with four torus neighbors
//! every iteration. Flattened onto a 64-GPU ring domain, the east/west
//! shifts are ring-local but the north/south shifts jump `cols` positions —
//! a crisp demonstration of per-step adaptivity: the optimizer keeps the
//! row exchanges on the ring and reconfigures (only) the column exchanges,
//! once `α_r` is small enough relative to the strip size.
//!
//! ```text
//! cargo run --release --example stencil_halo
//! ```

use adaptive_photonics::prelude::*;
use aps_cost::units::{format_bytes, format_time, KIB, MIB};

fn main() {
    let (rows, cols) = (8, 8);
    let n = rows * cols;

    println!("2-D halo exchange, {rows}×{cols} ranks on a {n}-GPU ring domain\n");
    println!(
        "{:>10} {:>10} | {:>12} {:>12} | schedule (E W S N)",
        "strip", "α_r", "static", "OPT"
    );

    let base = topology::builders::ring_unidirectional(n).expect("ring");
    for strip in [16.0 * KIB, 1.0 * MIB, 16.0 * MIB] {
        for alpha_r_us in [1.0, 10.0, 100.0] {
            let alpha_r = alpha_r_us * 1e-6;
            let coll = collectives::stencil::halo_2d(rows, cols, strip).expect("halo");
            coll.check().expect("verified");
            let mut exp = Experiment::domain(base.clone())
                .reconfig(ReconfigModel::constant(alpha_r).expect("α_r"))
                .collective(&coll);
            let cmp = exp.compare().expect("compare");
            let plan = exp.plan().expect("plan");
            println!(
                "{:>10} {:>10} | {:>12} {:>12} | {}",
                format_bytes(strip),
                format_time(alpha_r),
                format_time(cmp.static_s),
                format_time(cmp.opt_s),
                plan.switches.compact(),
            );
        }
    }

    println!(
        "\nReading: E(ast) stays on the ring (1-hop shifts); W(est) wraps n−1 hops and\n\
         S(outh)/N(orth) jump ±{cols}; those reconfigure first as strips grow or α_r drops."
    );
}
