//! Mixture-of-Experts All-to-All planning.
//!
//! Expert-parallel MoE layers issue an All-to-All per layer: every GPU
//! scatters token activations to every other GPU — the transpose workload
//! of the paper's Figure 1d/1h. The All-to-All is latency-critical (it sits
//! on the critical path of every forward/backward pass), and its per-step
//! patterns are shift permutations whose ring congestion grows with the
//! shift distance — making it the perfect showcase for selective
//! reconfiguration: OPT reconfigures the expensive far shifts and leaves
//! near shifts on the ring.
//!
//! ```text
//! cargo run --release --example moe_alltoall
//! ```

use adaptive_photonics::prelude::*;
use aps_cost::units::{format_bytes, format_time, MIB};

fn main() {
    let n = 64;
    // 8k tokens/GPU × 4 KiB activation slices ≈ 32 MiB send buffer/GPU.
    let buffer = 32.0 * MIB;

    println!(
        "MoE expert-parallel All-to-All, n = {n}, {} per GPU\n",
        format_bytes(buffer)
    );
    println!(
        "{:>10} | {:>12} {:>12} {:>12} | {:>14} {:>10}",
        "α_r", "static", "BvN", "OPT", "OPT schedule", "reconfigs"
    );

    let base = topology::builders::ring_unidirectional(n).expect("ring");
    let coll = collectives::alltoall::linear_shift(n, buffer).expect("collective");
    for alpha_r_us in [0.1, 1.0, 10.0, 100.0, 1000.0] {
        let alpha_r = alpha_r_us * 1e-6;
        let mut exp = Experiment::domain(base.clone())
            .reconfig(ReconfigModel::constant(alpha_r).expect("α_r"))
            .collective(&coll);
        let cmp = exp.compare().expect("compare");
        let plan = exp.plan().expect("plan");
        // Summarize the schedule: how many of the 63 shifts reconfigure,
        // and which is the nearest shift that does.
        let first_matched = plan
            .switches
            .choices()
            .iter()
            .position(|c| *c == ConfigChoice::Matched)
            .map(|i| format!("shifts ≥ {}", i + 1))
            .unwrap_or_else(|| "none".into());
        println!(
            "{:>10} | {:>12} {:>12} {:>12} | {:>14} {:>10}",
            format_time(alpha_r),
            format_time(cmp.static_s),
            format_time(cmp.bvn_s),
            format_time(cmp.opt_s),
            first_matched,
            plan.switches.reconfig_events(),
        );
    }

    println!(
        "\nReading: at small α_r OPT matches every shift (BvN-like); at large α_r it stays on\n\
         the ring; in between it reconfigures only the far shifts whose ring congestion\n\
         outweighs α_r — the transitional regime of Figure 2."
    );
}
