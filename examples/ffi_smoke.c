/* ffi_smoke.c — a complete C embedding client for libaps_ffi.
 *
 * Exercises the whole front door — version gate, collective plan +
 * simulate, heterogeneous scenario with a seeded failure storm, policy
 * sweep, service run with SLO readback — and prints every summary in a
 * canonical line format with doubles as raw IEEE-754 bit patterns.
 * scripts/ffi_smoke.sh diffs this output byte-for-byte against the
 * native Rust oracle (cargo run -p aps-ffi --example ffi_oracle), so
 * any drift between the C ABI and the native API fails CI.
 *
 * Build: cc examples/ffi_smoke.c -Iinclude -Ltarget/release -laps_ffi
 */

#include <inttypes.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

#include "adaptive_photonics.h"

#define MIB (1024.0 * 1024.0)

static void check(aps_status_t status, const char *what) {
  if (status != APS_STATUS_OK) {
    fprintf(stderr, "FAIL %s: %s (%s)\n", what, aps_status_name(status),
            aps_last_error_message());
    exit(1);
  }
}

/* The raw bit pattern of a double, so output compares exactly. */
static uint64_t bits(double v) {
  uint64_t u;
  memcpy(&u, &v, sizeof u);
  return u;
}

static aps_domain_config_t domain(uint32_t ports, const char *controller,
                                  int32_t fabric, int32_t storm,
                                  uint64_t seed) {
  aps_domain_config_t cfg;
  memset(&cfg, 0, sizeof cfg);
  cfg.struct_size = sizeof cfg;
  cfg.ports = ports;
  cfg.alpha_s = 100e-9;
  cfg.bandwidth_gbps = 800.0;
  cfg.delta_s = 100e-9;
  cfg.alpha_r_s = 10e-6;
  cfg.controller = controller;
  cfg.fabric = fabric;
  cfg.storm = storm;
  cfg.storm_seed = seed;
  return cfg;
}

static void print_sim(const char *tag, aps_simrun_t run) {
  aps_sim_summary_t s;
  memset(&s, 0, sizeof s);
  s.struct_size = sizeof s;
  check(aps_simrun_summary(run, &s), "simrun_summary");
  printf("%s completion_ps=%" PRIu64 " rows=%" PRIu64 " events=%" PRIu64
         " reconfig_ps=%" PRIu64 " transfer_ps=%" PRIu64
         " arbitration_ps=%" PRIu64 " speedup=%016" PRIx64 "\n",
         tag, s.completion_ps, s.rows, s.reconfig_events, s.reconfig_ps,
         s.transfer_ps, s.arbitration_ps, bits(s.speedup_vs_static));

  size_t written = 0;
  aps_run_row_t *rows = calloc(s.rows, sizeof *rows);
  if (!rows) {
    fprintf(stderr, "FAIL calloc\n");
    exit(1);
  }
  check(aps_simrun_rows(run, sizeof *rows, rows, s.rows, &written),
        "simrun_rows");
  for (size_t i = 0; i < written; i++) {
    printf("%s.row index=%" PRIu64 " total_ps=%" PRIu64 " reconfig_ps=%" PRIu64
           " transfer_ps=%" PRIu64 " arbitration_ps=%" PRIu64 "\n",
           tag, rows[i].index, rows[i].total_ps, rows[i].reconfig_ps,
           rows[i].transfer_ps, rows[i].arbitration_ps);
  }
  free(rows);
}

int main(void) {
  uint32_t major = 0, minor = 0, patch = 0;
  check(aps_abi_version_triple(&major, &minor, &patch), "version_triple");
  if (major != APS_ABI_MAJOR) {
    fprintf(stderr, "FAIL ABI major %u, header expects %u\n", major,
            APS_ABI_MAJOR);
    return 1;
  }
  printf("abi %u.%u.%u\n", major, minor, patch);

  /* 1. Collective on the optical baseline: plan, then simulate. */
  {
    aps_domain_config_t cfg = domain(16, "opt", APS_FABRIC_OPTICAL, 0, 0);
    aps_experiment_t exp = 0;
    check(aps_experiment_new(&cfg, &exp), "experiment_new");
    check(aps_experiment_bind_collective(exp, "hd-allreduce", MIB),
          "bind_collective");

    aps_plan_summary_t plan;
    memset(&plan, 0, sizeof plan);
    plan.struct_size = sizeof plan;
    check(aps_experiment_plan(exp, &plan), "plan");
    printf("plan steps=%" PRIu64 " matched=%" PRIu64 " events=%" PRIu64
           " total_s=%016" PRIx64 " reconfig_s=%016" PRIx64
           " transmission_s=%016" PRIx64 "\n",
           plan.steps, plan.matched_steps, plan.reconfig_events,
           bits(plan.total_s), bits(plan.reconfig_s),
           bits(plan.transmission_s));

    aps_simrun_t run = 0;
    check(aps_experiment_simulate(exp, &run), "simulate");
    print_sim("sim", run);
    check(aps_simrun_destroy(run), "simrun_destroy");
    check(aps_experiment_destroy(exp), "experiment_destroy");
  }

  /* 2. Heterogeneous scenario: hybrid fabric under a seeded failure
   * storm, greedy controller. */
  {
    aps_domain_config_t cfg = domain(32, "greedy", APS_FABRIC_HYBRID, 1, 42);
    aps_experiment_t exp = 0;
    check(aps_experiment_new(&cfg, &exp), "experiment_new(hetero)");
    check(aps_experiment_bind_scenario(exp, "hetero-hybrid", MIB),
          "bind_scenario");
    aps_simrun_t run = 0;
    check(aps_experiment_simulate(exp, &run), "simulate(hetero)");
    print_sim("hetero", run);
    check(aps_simrun_destroy(run), "simrun_destroy");
    check(aps_experiment_destroy(exp), "experiment_destroy");
  }

  /* 3. Multi-wavelength scenario on the wavelength bank. */
  {
    aps_domain_config_t cfg =
        domain(24, "opt", APS_FABRIC_WAVELENGTH_BANK, 0, 0);
    aps_experiment_t exp = 0;
    check(aps_experiment_new(&cfg, &exp), "experiment_new(bank)");
    check(aps_experiment_bind_scenario(exp, "multi-wavelength", MIB),
          "bind_scenario(bank)");
    aps_simrun_t run = 0;
    check(aps_experiment_simulate(exp, &run), "simulate(bank)");
    print_sim("bank", run);
    check(aps_simrun_destroy(run), "simrun_destroy");
    check(aps_experiment_destroy(exp), "experiment_destroy");
  }

  /* 4. Policy sweep over a small alpha_r x message-size grid. */
  {
    aps_domain_config_t cfg = domain(8, "opt", APS_FABRIC_OPTICAL, 0, 0);
    aps_experiment_t exp = 0;
    check(aps_experiment_new(&cfg, &exp), "experiment_new(sweep)");
    check(aps_experiment_bind_collective(exp, "alltoall", MIB),
          "bind_collective(sweep)");
    const double delays[2] = {1e-6, 10e-6};
    const double sizes[2] = {MIB, 4.0 * MIB};
    aps_sweep_cell_t cells[4];
    memset(cells, 0, sizeof cells);
    size_t written = 0;
    check(aps_experiment_sweep(exp, delays, 2, sizes, 2, sizeof cells[0],
                               cells, 4, &written),
          "sweep");
    for (size_t i = 0; i < written; i++) {
      printf("sweep.cell index=%zu static=%016" PRIx64 " bvn=%016" PRIx64
             " opt=%016" PRIx64 " threshold=%016" PRIx64 "\n",
             i, bits(cells[i].t_static_s), bits(cells[i].t_bvn_s),
             bits(cells[i].t_opt_s), bits(cells[i].t_threshold_s));
    }
    check(aps_experiment_destroy(exp), "experiment_destroy");
  }

  /* 5. Fabric-as-a-service: one bursty class, bounded-queue admission,
   * SLO readback. */
  {
    aps_domain_config_t cfg = domain(16, "opt", APS_FABRIC_OPTICAL, 0, 0);
    aps_experiment_t exp = 0;
    check(aps_experiment_new(&cfg, &exp), "experiment_new(service)");
    aps_service_class_t cls;
    memset(&cls, 0, sizeof cls);
    cls.struct_size = sizeof cls;
    cls.name = "burst";
    cls.ports = 8;
    cls.workload = "hd-allreduce";
    cls.message_bytes = MIB;
    cls.arrival_rate_hz = 2000.0;
    cls.jobs = 24;
    cls.seed = 7;
    cls.matched = 1;
    check(aps_experiment_add_service_class(exp, &cls), "add_service_class");
    check(aps_experiment_set_admission(exp, APS_ADMISSION_QUEUE, 4),
          "set_admission");

    aps_service_t service = 0;
    check(aps_experiment_run_service(exp, &service), "run_service");
    aps_service_stats_t stats;
    memset(&stats, 0, sizeof stats);
    stats.struct_size = sizeof stats;
    check(aps_service_stats(service, &stats), "service_stats");
    printf("service makespan_ps=%" PRIu64 " offered=%" PRIu64
           " completed=%" PRIu64 " steps=%" PRIu64 " events=%" PRIu64
           " classes=%" PRIu64 "\n",
           stats.makespan_ps, stats.offered, stats.completed, stats.steps,
           stats.reconfig_events, stats.classes);

    for (size_t i = 0; i < stats.classes; i++) {
      char name[64];
      size_t written = 0;
      check(aps_service_class_name(service, i, name, sizeof name, &written),
            "service_class_name");
      aps_class_slo_t slo;
      memset(&slo, 0, sizeof slo);
      slo.struct_size = sizeof slo;
      check(aps_service_class_slo(service, i, &slo), "service_class_slo");
      printf("slo name=%s offered=%" PRIu64 " admitted=%" PRIu64
             " queued=%" PRIu64 " completed=%" PRIu64 " p50=%" PRIu64
             " p99=%" PRIu64 " max=%" PRIu64 " wait_p99=%" PRIu64
             " goodput=%016" PRIx64 "\n",
             name, slo.offered, slo.admitted, slo.queued, slo.completed,
             slo.completion_p50_ps, slo.completion_p99_ps,
             slo.completion_max_ps, slo.wait_p99_ps, bits(slo.goodput));
    }

    check(aps_service_destroy(service), "service_destroy");
    /* Typed double-destroy: the generation check must catch this. */
    if (aps_service_destroy(service) != APS_STATUS_STALE_HANDLE) {
      fprintf(stderr, "FAIL double-destroy was not typed\n");
      return 1;
    }
    check(aps_experiment_destroy(exp), "experiment_destroy");
  }

  return 0;
}
