//! Planning a whole DNN training iteration.
//!
//! A data+expert-parallel training step issues a *sequence* of collectives:
//! per layer a gradient AllReduce, plus an All-to-All token shuffle for MoE
//! layers. §3.3 notes the framework applies unchanged to such sequences —
//! the optimizer sees one long step list and places reconfigurations across
//! collective boundaries (e.g. staying matched from the tail of an
//! AllReduce into the following All-to-All). Composite schedules bind to
//! an [`Experiment`] through [`Experiment::schedule`].
//!
//! ```text
//! cargo run --release --example dnn_training
//! ```

use adaptive_photonics::prelude::*;
use aps_bench::workload::training_iteration;
use aps_core::explain;
use aps_cost::units::{format_time, MIB};

fn main() {
    let n = 64;
    let layers = 8;
    let grad = 24.0 * MIB; // gradient shard per layer
    let moe = 32.0 * MIB; // MoE token buffer
    let schedule = training_iteration(n, layers, grad, 2, moe).expect("workload construction");

    println!(
        "Training iteration on {n} GPUs: {layers} layers × AllReduce({}) + MoE All-to-All({}) every 2nd layer",
        aps_cost::units::format_bytes(grad),
        aps_cost::units::format_bytes(moe),
    );
    println!(
        "total steps in the composite schedule: {}\n",
        schedule.num_steps()
    );

    let base = topology::builders::ring_unidirectional(n).expect("ring");
    println!(
        "{:>10} | {:>12} {:>12} {:>12} {:>12} | {:>9}",
        "α_r", "static", "BvN", "threshold", "OPT", "reconfigs"
    );
    for alpha_r_us in [0.1, 1.0, 10.0, 100.0] {
        let alpha_r = alpha_r_us * 1e-6;
        let mut exp = Experiment::domain(base.clone())
            .reconfig(ReconfigModel::constant(alpha_r).expect("α_r"))
            .schedule(&schedule);
        let cmp = exp.compare().expect("compare");
        let plan = exp.plan().expect("plan");
        println!(
            "{:>10} | {:>12} {:>12} {:>12} {:>12} | {:>9}",
            format_time(alpha_r),
            format_time(cmp.static_s),
            format_time(cmp.bvn_s),
            format_time(cmp.threshold_s),
            format_time(cmp.opt_s),
            plan.switches.reconfig_events(),
        );
    }

    // Zoom into the interesting regime and explain the first AllReduce +
    // All-to-All boundary step by step.
    let alpha_r = 10e-6;
    let mut exp = Experiment::domain(base)
        .reconfig(ReconfigModel::constant(alpha_r).expect("α_r"))
        .schedule(&schedule);
    let problem = exp.problem().expect("problem");
    let plan = exp.plan().expect("plan");
    let ex = explain::explain(
        &problem,
        &plan.switches,
        ReconfigAccounting::PaperConservative,
    )
    .expect("explain");
    println!(
        "\nFirst 16 decisions at α_r = {} (AllReduce tail → All-to-All head):",
        format_time(alpha_r)
    );
    let text = ex.to_string();
    for line in text.lines().take(17) {
        println!("  {line}");
    }
}
