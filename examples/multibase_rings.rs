//! Co-prime ring base pools (§3.3 extension).
//!
//! The paper suggests extending the optimization from one base topology to
//! "a fixed pool of base topologies … e.g., using multiple co-prime rings".
//! This example shows the win on an All-to-All: with a single stride-1 ring,
//! far shifts are brutally congested; adding stride-15 and stride-31 rings
//! to the pool lets the scheduler hop between bases so most shifts find a
//! short path on *some* ring without paying a matched reconfiguration per
//! step.
//!
//! ```text
//! cargo run --release --example multibase_rings
//! ```

use adaptive_photonics::core::multibase::{build_multibase, MultiChoice};
use adaptive_photonics::prelude::*;
use aps_cost::units::{format_bytes, format_time, MIB};

fn main() {
    let n = 64;
    let buffer = 16.0 * MIB;
    let alpha_r = 50e-6;

    let ring1 = topology::builders::ring_unidirectional(n).expect("ring");
    let ring15 = topology::builders::coprime_rings(n, &[15]).expect("ring15");
    let ring31 = topology::builders::coprime_rings(n, &[31]).expect("ring31");
    let coll = collectives::alltoall::linear_shift(n, buffer).expect("collective");

    println!(
        "All-to-All over n = {n}, {} per GPU, α_r = {}\n",
        format_bytes(buffer),
        format_time(alpha_r)
    );

    // Single-base reference point via the Experiment front door: the
    // {1}-pool row below must match this (a one-ring pool *is* the plain
    // eq. (7) problem).
    let single = Experiment::domain(ring1.clone())
        .reconfig(ReconfigModel::constant(alpha_r).expect("α_r"))
        .collective(&coll)
        .plan()
        .expect("plan");
    println!(
        "{:>18}: {}  (Experiment::plan on the stride-1 ring)",
        "single-base OPT",
        format_time(single.report.total_s())
    );

    for (label, pool) in [
        ("single ring {1}", vec![&ring1]),
        ("pool {1, 31}", vec![&ring1, &ring31]),
        ("pool {1, 15, 31}", vec![&ring1, &ring15, &ring31]),
    ] {
        let mb = build_multibase(
            &pool,
            &coll.schedule,
            CostParams::paper_defaults(),
            ReconfigModel::constant(alpha_r).expect("α_r"),
            ThroughputSolver::ForcedPath,
            0,
        )
        .expect("multibase problem");
        let (choices, total) = mb
            .optimize(ReconfigAccounting::PaperConservative)
            .expect("optimize");
        let mut by_state = vec![0usize; pool.len() + 1];
        for c in &choices {
            match c {
                MultiChoice::Base(k) => by_state[*k] += 1,
                MultiChoice::Matched => by_state[pool.len()] += 1,
            }
        }
        println!(
            "{label:>18}: {}  | steps per state: bases {:?}, matched {}",
            format_time(total),
            &by_state[..pool.len()],
            by_state[pool.len()]
        );
    }

    println!(
        "\nLarger pools strictly dominate: each shift-k step picks the ring whose stride\n\
         divides the distance best, reserving α_r for the few steps no base serves well."
    );
}
