//! Fabric as a service: an open-system job stream on a shared fabric.
//!
//! Everything else in this repo runs a *closed* system — a fixed
//! workload, simulated to completion. This example runs the fabric as
//! an operator would: two tenant classes offer jobs over time (a steady
//! Poisson training class and a bursty MMPP inference class), an
//! admission policy decides what fits, a port-partition allocator
//! carves the fabric per job, and every departure folds into O(1)
//! per-class SLO state — goodput, p50/p99 completion latency, and the
//! leximin fairness vector.
//!
//! The same offered load runs under all three admission policies so
//! the trade-off is visible: `Reject` sheds load, a bounded `Queue`
//! absorbs bursts until it overflows, and `Backpressure` stalls the
//! sources so nothing is ever lost — at the cost of latency.
//!
//! ```text
//! cargo run --release --example faas_service
//! ```

use adaptive_photonics::faas::ServiceSwitching;
use adaptive_photonics::prelude::*;
use aps_cost::units::{format_time, picos_to_secs, MIB};

/// The two tenant classes, built fresh per policy run.
fn classes() -> Vec<TenantClass> {
    let n_train = 4;
    let train = collectives::allreduce::halving_doubling::build(n_train, 16.0 * MIB)
        .expect("4-port allreduce")
        .schedule;
    let n_infer = 2;
    let infer = collectives::allreduce::ring::build(n_infer, MIB)
        .expect("2-port allreduce")
        .schedule;
    vec![
        // Steady training jobs: 4 ports each, ~1 every 5 µs.
        TenantClass::new(
            "training",
            n_train,
            Matching::shift(n_train, 1).expect("ring base"),
            ServiceSwitching::Uniform(ConfigChoice::Matched),
            Box::new(PoissonArrivals::new(2.0e5, Some(40), 42).expect("rate")),
            Box::new(move |_id: u64| -> Box<dyn Workload> {
                Box::new(ScheduleStream::new(train.clone()))
            }),
        ),
        // Bursty inference jobs: 2 ports each, alternating hot/cold
        // phases (MMPP), so they arrive in clumps.
        TenantClass::new(
            "inference",
            n_infer,
            Matching::shift(n_infer, 1).expect("pair base"),
            ServiceSwitching::Uniform(ConfigChoice::Matched),
            Box::new(MmppArrivals::new([2.0e6, 1.0e5], [3e-6, 3e-6], Some(40), 7).expect("mmpp")),
            Box::new(move |_id: u64| -> Box<dyn Workload> {
                Box::new(ScheduleStream::new(infer.clone()))
            }),
        ),
    ]
}

fn main() {
    let n = 8;
    println!(
        "Fabric as a service on {n} ports: 40 Poisson training jobs (4 ports) \
         + 40 bursty inference jobs (2 ports)\n"
    );
    println!(
        "{:>13} | {:>9} | {:>5}/{:<5} | {:>6} | {:>10} | {:>10} | {:>8}",
        "admission", "class", "done", "offer", "reject", "p50", "p99", "goodput"
    );

    let mut fairness: Vec<(&str, Vec<f64>)> = Vec::new();
    for (name, policy) in [
        ("reject", AdmissionPolicy::Reject),
        ("queue(4)", AdmissionPolicy::Queue { capacity: 4 }),
        (
            "backpressure",
            AdmissionPolicy::Backpressure { capacity: 4 },
        ),
    ] {
        let report = Experiment::domain(topology::builders::ring_unidirectional(n).unwrap())
            .reconfig(ReconfigModel::constant(5e-6).unwrap())
            .service(classes())
            .admission(policy)
            .run()
            .expect("service run");
        let s = report.summary;
        for (class, t) in s.class_names.iter().zip(&s.tenants) {
            let q =
                |p: Option<u64>| p.map_or_else(|| "-".into(), |v| format_time(picos_to_secs(v)));
            println!(
                "{:>13} | {:>9} | {:>5}/{:<5} | {:>6} | {:>10} | {:>10} | {:>7.0}%",
                name,
                class,
                t.completed,
                t.offered,
                t.rejected(),
                q(t.completion.p50_ps()),
                q(t.completion.p99_ps()),
                100.0 * t.goodput(),
            );
        }
        println!(
            "{:>13} | makespan {}, {} steps, {} reconfigurations",
            "",
            format_time(s.makespan_s()),
            s.steps.steps,
            s.steps.reconfig_events,
        );
        fairness.push((name, s.fairness_vector()));
    }

    // Leximin: the policy whose worst-off tenant does best wins.
    let best = fairness
        .iter()
        .max_by(|(_, a), (_, b)| leximin_cmp(a, b))
        .unwrap();
    println!(
        "\nLeximin-fairest admission policy: {} (goodput vector {:?})",
        best.0, best.1
    );
}
