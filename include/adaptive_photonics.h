/* adaptive_photonics.h — the stable C embedding ABI of the
 * adaptive-photonics engine (libaps_ffi).
 *
 * Hand-maintained against crates/ffi/src/api.rs; the library checks the
 * `struct_size` first field of every struct at the boundary, so a stale
 * header fails with APS_STATUS_STRUCT_SIZE_MISMATCH instead of reading
 * garbage. Check aps_abi_version() before anything else and reject a
 * major-version mismatch.
 *
 * Conventions:
 *   - Every call returns an aps_status_t; non-zero means failure and a
 *     human-readable message is available from aps_last_error_message()
 *     (thread-local, owned by the library, valid until the next failing
 *     call on the same thread).
 *   - Objects are opaque 64-bit handles (slot + generation). Handle 0
 *     is never valid. Destroying a handle twice returns
 *     APS_STATUS_STALE_HANDLE — typed, never undefined behavior.
 *   - Buffer-reading calls take a capacity and write the required count
 *     to their `written` out-parameter, including on
 *     APS_STATUS_BUFFER_TOO_SMALL, so callers can size-then-fill.
 *   - Panics inside the engine are caught at the boundary and surface
 *     as APS_STATUS_PANICKED.
 */

#ifndef ADAPTIVE_PHOTONICS_H
#define ADAPTIVE_PHOTONICS_H

#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

/* ------------------------------------------------------------------ */
/* Version                                                            */
/* ------------------------------------------------------------------ */

#define APS_ABI_MAJOR 1
#define APS_ABI_MINOR 0
#define APS_ABI_PATCH 0

/* Packed as (major << 16) | (minor << 8) | patch. */
uint32_t aps_abi_version(void);

/* ------------------------------------------------------------------ */
/* Status codes                                                       */
/* ------------------------------------------------------------------ */

typedef int32_t aps_status_t;

enum {
  APS_STATUS_OK = 0,
  APS_STATUS_NULL_ARGUMENT = 1,
  APS_STATUS_INVALID_UTF8 = 2,
  APS_STATUS_INVALID_ARGUMENT = 3,
  APS_STATUS_UNKNOWN_CONTROLLER = 4,
  APS_STATUS_UNKNOWN_SCENARIO = 5,
  APS_STATUS_UNKNOWN_WORKLOAD = 6,
  APS_STATUS_STRUCT_SIZE_MISMATCH = 7,
  APS_STATUS_STALE_HANDLE = 8,
  APS_STATUS_HANDLE_EXHAUSTED = 9,
  APS_STATUS_BUFFER_TOO_SMALL = 10,
  APS_STATUS_WORKLOAD_UNBOUND = 11,
  APS_STATUS_CORE = 12,
  APS_STATUS_SIM = 13,
  APS_STATUS_COLLECTIVE = 14,
  APS_STATUS_SERVICE = 15,
  APS_STATUS_FABRIC = 16,
  APS_STATUS_PANICKED = 17
};

aps_status_t aps_abi_version_triple(uint32_t *major, uint32_t *minor,
                                    uint32_t *patch);

/* Stable identifier of a status code ("APS_STATUS_OK", ...); static
 * storage, never freed by the caller. */
const char *aps_status_name(aps_status_t status);

/* Message of the most recent failing call on this thread. */
const char *aps_last_error_message(void);

/* ------------------------------------------------------------------ */
/* Handles                                                            */
/* ------------------------------------------------------------------ */

typedef uint64_t aps_experiment_t; /* from aps_experiment_new          */
typedef uint64_t aps_simrun_t;     /* from aps_experiment_simulate     */
typedef uint64_t aps_service_t;    /* from aps_experiment_run_service  */

/* ------------------------------------------------------------------ */
/* Configuration                                                      */
/* ------------------------------------------------------------------ */

/* Fabric media for aps_domain_config_t.fabric. */
typedef enum {
  APS_FABRIC_OPTICAL = 0,        /* all-optical circuit switch         */
  APS_FABRIC_ELECTRICAL = 1,     /* crossbar, zero-cost reconfig       */
  APS_FABRIC_HYBRID = 2,         /* half electrical, half optical      */
  APS_FABRIC_WAVELENGTH_BANK = 3 /* multi-λ bank, per-band retune cost */
} aps_fabric_kind_t;

/* Admission policies for aps_experiment_set_admission. */
typedef enum {
  APS_ADMISSION_REJECT = 0,
  APS_ADMISSION_QUEUE = 1,
  APS_ADMISSION_BACKPRESSURE = 2
} aps_admission_policy_t;

typedef struct aps_domain_config_t {
  size_t struct_size;     /* = sizeof(aps_domain_config_t)             */
  uint32_t ports;         /* fabric port count (>= 2)                  */
  double alpha_s;         /* per-step latency α; <= 0 → paper default  */
  double bandwidth_gbps;  /* line rate; <= 0 → paper default (800)     */
  double delta_s;         /* per-hop propagation δ; < 0 → default      */
  double alpha_r_s;       /* reconfiguration delay α_r                 */
  const char *controller; /* "static"|"bvn"|"threshold"|"opt"|"greedy";
                             NULL → "opt"                              */
  int32_t fabric;         /* an aps_fabric_kind_t                      */
  int32_t storm;          /* nonzero → apply the seeded failure storm  */
  uint64_t storm_seed;    /* storm seed (when storm != 0)              */
} aps_domain_config_t;

typedef struct aps_service_class_t {
  size_t struct_size;       /* = sizeof(aps_service_class_t)           */
  const char *name;         /* class name (required)                   */
  uint32_t ports;           /* ports per job (>= 2)                    */
  const char *workload;     /* collective family each job runs         */
  double message_bytes;     /* message volume per job                  */
  double arrival_rate_hz;   /* Poisson rate, jobs per simulated second */
  uint64_t jobs;            /* jobs offered; 0 = unbounded             */
  uint64_t seed;            /* arrival-process seed                    */
  int32_t matched;          /* nonzero → reconfigure every step        */
} aps_service_class_t;

/* ------------------------------------------------------------------ */
/* Summaries                                                          */
/* ------------------------------------------------------------------ */

typedef struct aps_plan_summary_t {
  size_t struct_size;     /* set to sizeof before the call             */
  uint64_t steps;         /* steps in the collective                   */
  uint64_t matched_steps; /* steps planned matched                     */
  uint64_t reconfig_events;
  double latency_s;       /* s·α term                                  */
  double propagation_s;
  double transmission_s;
  double reconfig_s;
  double total_s;         /* planned completion, seconds               */
} aps_plan_summary_t;

typedef struct aps_sim_summary_t {
  size_t struct_size;       /* set to sizeof before the call           */
  uint64_t completion_ps;   /* completion, integer picoseconds         */
  double completion_s;
  double speedup_vs_static; /* static baseline / this run              */
  uint64_t rows;            /* detail rows for aps_simrun_rows         */
  uint64_t reconfig_events;
  uint64_t reconfig_ps;
  uint64_t transfer_ps;
  uint64_t arbitration_ps;
} aps_sim_summary_t;

/* One detail row: a collective step, or one tenant of a scenario. */
typedef struct aps_run_row_t {
  uint64_t index;
  uint64_t total_ps; /* step total, or the tenant's finish instant     */
  uint64_t reconfig_ps;
  uint64_t transfer_ps;
  uint64_t arbitration_ps;
} aps_run_row_t;

/* One (alpha_r, message-size) sweep cell under the four policies. */
typedef struct aps_sweep_cell_t {
  double t_static_s;
  double t_bvn_s;
  double t_opt_s;
  double t_threshold_s;
} aps_sweep_cell_t;

typedef struct aps_service_stats_t {
  size_t struct_size; /* set to sizeof before the call                 */
  uint64_t makespan_ps;
  double makespan_s;
  uint64_t offered;
  uint64_t completed;
  uint64_t steps;
  uint64_t reconfig_events;
  uint64_t classes; /* index bound for the per-class calls             */
} aps_service_stats_t;

typedef struct aps_class_slo_t {
  size_t struct_size; /* set to sizeof before the call                 */
  uint64_t offered;
  uint64_t admitted;
  uint64_t queued;
  uint64_t backpressured;
  uint64_t rejected_too_large;
  uint64_t rejected_ports_busy;
  uint64_t rejected_queue_full;
  uint64_t completed;
  uint64_t failed;
  uint64_t completion_p50_ps; /* 0 when no jobs completed              */
  uint64_t completion_p99_ps; /* 0 when no jobs completed              */
  uint64_t completion_max_ps;
  uint64_t wait_p50_ps;       /* 0 when no jobs completed              */
  uint64_t wait_p99_ps;       /* 0 when no jobs completed              */
  double completion_mean_ps;
  double goodput; /* completed / offered                               */
} aps_class_slo_t;

/* ------------------------------------------------------------------ */
/* Experiment lifecycle                                               */
/* ------------------------------------------------------------------ */

aps_status_t aps_experiment_new(const aps_domain_config_t *cfg,
                                aps_experiment_t *out);
aps_status_t aps_experiment_destroy(aps_experiment_t experiment);

/* Workload bindings — each replaces the previous binding.
 * Collective families: "hd-allreduce", "ring-allreduce", "alltoall",
 * "broadcast". Scenario names span the base pack and the heterogeneous
 * pack ("hetero-hybrid", "multi-wavelength", ...). */
aps_status_t aps_experiment_bind_collective(aps_experiment_t experiment,
                                            const char *family,
                                            double message_bytes);
aps_status_t aps_experiment_bind_scenario(aps_experiment_t experiment,
                                          const char *name,
                                          double message_bytes);
aps_status_t aps_experiment_add_service_class(aps_experiment_t experiment,
                                              const aps_service_class_t *cls);
aps_status_t aps_experiment_set_admission(aps_experiment_t experiment,
                                          int32_t policy, uint64_t capacity);
aps_status_t aps_experiment_set_max_jobs(aps_experiment_t experiment,
                                         uint64_t max_jobs);

/* ------------------------------------------------------------------ */
/* Runs                                                               */
/* ------------------------------------------------------------------ */

/* Plans the bound collective and prices the schedule (collective
 * bindings only). */
aps_status_t aps_experiment_plan(aps_experiment_t experiment,
                                 aps_plan_summary_t *out);

/* Simulates the bound collective or scenario on the configured fabric;
 * also runs the static baseline for speedup_vs_static. */
aps_status_t aps_experiment_simulate(aps_experiment_t experiment,
                                     aps_simrun_t *out_run);

/* Sweeps the bound collective over reconfiguration delays × message
 * sizes. `cells` holds n_delays * n_bytes entries, row-major with
 * delays outermost; pass cell_size = sizeof(aps_sweep_cell_t). */
aps_status_t aps_experiment_sweep(aps_experiment_t experiment,
                                  const double *reconf_delays_s,
                                  size_t n_delays, const double *message_bytes,
                                  size_t n_bytes, size_t cell_size,
                                  aps_sweep_cell_t *cells, size_t capacity,
                                  size_t *written);

/* Runs the experiment's service classes as an open system. */
aps_status_t aps_experiment_run_service(aps_experiment_t experiment,
                                        aps_service_t *out_service);

/* ------------------------------------------------------------------ */
/* Reading runs                                                       */
/* ------------------------------------------------------------------ */

aps_status_t aps_simrun_summary(aps_simrun_t run, aps_sim_summary_t *out);
aps_status_t aps_simrun_rows(aps_simrun_t run, size_t row_size,
                             aps_run_row_t *rows, size_t capacity,
                             size_t *written);
aps_status_t aps_simrun_destroy(aps_simrun_t run);

/* ------------------------------------------------------------------ */
/* Reading service runs                                               */
/* ------------------------------------------------------------------ */

aps_status_t aps_service_stats(aps_service_t service,
                               aps_service_stats_t *out);
aps_status_t aps_service_class_slo(aps_service_t service, size_t index,
                                   aps_class_slo_t *out);
/* Copies the class name, NUL-terminated; `written` gets the byte count
 * including the NUL. */
aps_status_t aps_service_class_name(aps_service_t service, size_t index,
                                    char *buffer, size_t capacity,
                                    size_t *written);
aps_status_t aps_service_destroy(aps_service_t service);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* ADAPTIVE_PHOTONICS_H */
